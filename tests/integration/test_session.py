"""Staged-session API: stage caching, artifact reuse, and bit-identical
back-compat of the :func:`compile_fortran` shim."""

import warnings

import pytest

from repro.ir import print_op
from repro.ir.pass_manager import Instrumentation
from repro.pipeline import compile_fortran
from repro.session import KernelOverrides, Session, TargetConfig
from repro.transforms import MemorySpacePolicy
from repro.workloads import SAXPY_SOURCE, get_workload
from tests.conftest import SAXPY_MINI


class TestStageCaching:
    def test_frontend_computed_once(self):
        session = Session(SAXPY_MINI)
        assert session.frontend() is session.frontend()
        assert session.counters["frontend_compiles"] == 1

    def test_host_device_cached_per_policy(self):
        session = Session(SAXPY_MINI)
        single = session.host_device()
        assert session.host_device() is single
        robin = session.host_device("round_robin")
        assert robin is not single
        assert session.counters["host_device_builds"] == 2

    def test_device_build_cached_per_overrides(self):
        session = Session(SAXPY_MINI)
        base = session.device_build()
        assert session.device_build(KernelOverrides()) is base
        wide = session.device_build(KernelOverrides(simdlen=4))
        assert wide is not base
        assert session.counters["frontend_compiles"] == 1
        assert session.counters["device_builds"] == 2

    def test_programs_share_host_artifacts(self):
        session = Session(SAXPY_MINI)
        a = session.program()
        b = session.program(KernelOverrides(simdlen=2))
        assert a.host_module is b.host_module
        assert a.host_cpp is b.host_cpp
        assert a.bitstream is not b.bitstream

    def test_frontend_module_stays_pristine(self):
        """Stages clone before mutating: the frontend module keeps its
        omp form, and the pre-HLS device module keeps omp loops."""
        session = Session(SAXPY_MINI)
        session.program()
        names = {op.name for op in session.frontend().module.walk()}
        assert "omp.target" in names
        device_names = {
            op.name for op in session.host_device().device_module.walk()
        }
        assert "omp.parallel" in device_names  # not yet HLS-lowered
        assert "hls.pipeline" not in device_names

    def test_rebuild_after_pristine_reuse_is_deterministic(self):
        """Two sessions over the same source produce identical builds
        even after the first session ran multiple device builds."""
        first = Session(SAXPY_MINI)
        first.program(KernelOverrides(simdlen=2))
        first_base = first.program()
        second_base = Session(SAXPY_MINI).program()
        assert print_op(first_base.device_module) == print_op(
            second_base.device_module
        )


class TestStageFailureEviction:
    """A raise mid-stage must leave the session reusable: the failed
    stage's cache key is evicted (never a partial artifact), earlier
    stages stay cached, and an immediate retry succeeds."""

    def test_failed_device_build_evicts_key_and_retry_succeeds(
        self, monkeypatch
    ):
        from repro.backend.vitis import VitisCompiler
        from repro.reliability import DeviceBuildError

        session = Session(SAXPY_MINI)
        session.host_device()  # warm the earlier stages
        counters_before = dict(session.counters)

        real_compile = VitisCompiler.compile
        calls = {"n": 0}

        def flaky_compile(self, module, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("synthesis backend crashed")
            return real_compile(self, module, **kwargs)

        monkeypatch.setattr(VitisCompiler, "compile", flaky_compile)
        with pytest.raises(DeviceBuildError) as excinfo:
            session.device_build()
        assert excinfo.value.__cause__ is not None
        assert not session._builds  # the poisoned key was evicted

        # earlier stage caches survived — nothing recompiled
        assert session.counters["frontend_compiles"] == \
            counters_before["frontend_compiles"]
        assert session.counters["host_device_builds"] == \
            counters_before["host_device_builds"]

        # the retry re-runs only the failed stage, bit-identically to a
        # fresh session over the same source
        retried = session.program()
        assert calls["n"] == 2  # one failed attempt + one retry
        pristine = Session(SAXPY_MINI).program()
        assert print_op(retried.device_module) == print_op(
            pristine.device_module
        )

    def test_keyboard_interrupt_evicts_and_reraises_unwrapped(
        self, monkeypatch
    ):
        """Ctrl-C mid-build is a BaseException, not an Exception: it must
        still evict the stage key (session stays reusable) and must
        propagate as KeyboardInterrupt, never wrapped into a ReproError."""
        from repro.backend.vitis import VitisCompiler

        session = Session(SAXPY_MINI)
        session.host_device()
        real_compile = VitisCompiler.compile
        calls = {"n": 0}

        def interrupted_compile(self, module, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return real_compile(self, module, **kwargs)

        monkeypatch.setattr(VitisCompiler, "compile", interrupted_compile)
        with pytest.raises(KeyboardInterrupt):
            session.device_build()
        assert not session._builds

        retried = session.program()
        assert calls["n"] == 2
        pristine = Session(SAXPY_MINI).program()
        assert print_op(retried.device_module) == print_op(
            pristine.device_module
        )

    def test_keyboard_interrupt_in_frontend_leaves_session_reusable(
        self, monkeypatch
    ):
        import repro.session as session_mod

        session = Session(SAXPY_MINI)

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(session_mod, "compile_to_core", interrupt)
        with pytest.raises(KeyboardInterrupt):
            session.frontend()
        monkeypatch.undo()

        assert session._frontend is None
        assert session.frontend() is session.frontend()
        assert session.counters["frontend_compiles"] == 1

    def test_failed_frontend_caches_nothing(self, monkeypatch):
        import repro.session as session_mod
        from repro.reliability import FrontendError

        session = Session(SAXPY_MINI)

        def crash(*args, **kwargs):
            raise RuntimeError("instrumentation hook crashed")

        monkeypatch.setattr(session_mod, "compile_to_core", crash)
        with pytest.raises(FrontendError):
            session.frontend()
        monkeypatch.undo()

        assert session.frontend() is session.frontend()  # retried fine
        assert session.counters["frontend_compiles"] == 1

    def test_executor_forwards_reliability_kwargs(self):
        from repro.reliability import DmaError, FaultPlan, FaultSpec

        program = Session(SAXPY_MINI).program()
        plan = FaultPlan([FaultSpec(site="dma_start", transient=False)])
        executor = program.executor(fault_plan=plan, watchdog_steps=10_000)
        workload = get_workload("saxpy")
        instance = workload.instance(64)
        with pytest.raises(DmaError):
            executor.run(workload.entry, *instance.args)


class TestInstrumentedSession:
    def test_stage_snapshots(self):
        session = Session(
            SAXPY_MINI, instrumentation=Instrumentation(capture_ir=True)
        )
        program = session.program()
        assert program.stage_names == [
            "fir+omp", "core+omp", "device-dialect", "device-hls",
            "llvm-ir", "amd-hls-llvm7",
        ]
        assert "hls.pipeline" in session.instrumentation.stage("device-hls")

    def test_pass_timings_recorded(self):
        session = Session(SAXPY_MINI)
        session.program()
        names = [t.pass_name for t in session.instrumentation.pass_traces]
        assert "fir-to-core" in names
        assert "lower-omp-to-hls" in names
        assert all(t.duration_s >= 0 for t in session.instrumentation.pass_traces)

    def test_no_snapshots_without_capture(self):
        session = Session(SAXPY_MINI)
        assert session.program().stages == []


class TestBackCompatShim:
    """compile_fortran(**old_kwargs) warns but is bit-identical to a
    hand-built Session."""

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="capture_stages"):
            compile_fortran(SAXPY_MINI, capture_stages=True)
        with pytest.warns(DeprecationWarning, match="default_reduction_copies"):
            compile_fortran(SAXPY_MINI, default_reduction_copies=4)

    def test_plain_compile_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compile_fortran(SAXPY_MINI)

    def test_bit_identical_to_hand_built_session(self):
        with pytest.warns(DeprecationWarning):
            old = compile_fortran(
                SAXPY_SOURCE,
                memory_space_policy=MemorySpacePolicy(mode="round_robin"),
                default_reduction_copies=4,
                shared_bundle=True,
                capture_stages=True,
            )
        session = Session(
            SAXPY_SOURCE,
            target=TargetConfig(memory_space_policy="round_robin"),
            instrumentation=Instrumentation(capture_ir=True),
        )
        new = session.program(
            KernelOverrides(reduction_copies=4, shared_bundle=True)
        )
        assert [s.name for s in old.stages] == [s.name for s in new.stages]
        assert [s.ir for s in old.stages] == [s.ir for s in new.stages]
        assert old.host_cpp == new.host_cpp
        assert print_op(old.device_module) == print_op(new.device_module)
        assert print_op(old.host_module) == print_op(new.host_module)
        assert old.bitstream.utilization().rounded() == \
            new.bitstream.utilization().rounded()

    def test_modelled_values_identical(self):
        """Same simulated run numbers (device time, steps, outputs)
        through the shim and the staged API."""
        workload = get_workload("saxpy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = compile_fortran(workload.source)
        new = Session(workload.source).program()
        results = []
        for program in (old, new):
            instance = workload.instance(2000)
            run = program.executor().run(workload.entry, *instance.args)
            workload.check(instance)
            results.append(
                (run.device_time_s, run.interpreter_steps, run.kernel_cycles)
            )
        assert results[0] == results[1]

    def test_compile_workload_shim(self):
        from repro.pipeline import compile_workload

        program = compile_workload("saxpy")
        assert any("saxpy" in name for name in program.bitstream.kernels)


class TestTargetConfig:
    def test_policy_applies_to_memory_spaces(self):
        session = Session(
            SAXPY_SOURCE,
            target=TargetConfig(memory_space_policy="round_robin"),
        )
        program = session.program()
        kernel = next(iter(program.bitstream.kernels.values()))
        spaces = {
            arg.type.memory_space for arg in kernel.func_op.body.args
        }
        assert len(spaces) > 1  # spread across HBM banks

    def test_policy_object_accepted(self):
        policy = MemorySpacePolicy(mode="round_robin", num_banks=4)
        session = Session(
            SAXPY_SOURCE, target=TargetConfig(memory_space_policy=policy)
        )
        program = session.program()
        kernel = next(iter(program.bitstream.kernels.values()))
        assert all(
            arg.type.memory_space <= 4
            for arg in kernel.func_op.body.args
        )

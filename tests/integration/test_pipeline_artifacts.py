"""Artifact-level integration checks across the whole pipeline."""

import numpy as np
import pytest

from repro.ir.pass_manager import Instrumentation
from repro.pipeline import compile_fortran
from repro.session import Session
from repro.workloads import SGESL_SOURCE
from tests.conftest import SAXPY_MINI


class TestStageCapture:
    def test_stage_order_and_content(self):
        program = Session(
            SAXPY_MINI, instrumentation=Instrumentation(capture_ir=True)
        ).program()
        assert program.stage_names == [
            "fir+omp", "core+omp", "device-dialect", "device-hls",
            "llvm-ir", "amd-hls-llvm7",
        ]
        by_name = {s.name: s.ir for s in program.stages}
        # each stage contains its characteristic construct and NOT later ones
        assert "fir.declare" in by_name["fir+omp"]
        assert "device.alloc" not in by_name["core+omp"]
        assert "device.alloc" in by_name["device-dialect"]
        assert "hls.pipeline" not in by_name["device-dialect"]
        assert "hls.pipeline" in by_name["device-hls"]

    def test_vitis_does_not_mutate_device_module(self):
        """The LLVM path runs on a clone: hls ops stay in the module."""
        program = compile_fortran(SAXPY_MINI)
        names = {op.name for op in program.device_module.walk()}
        assert "hls.pipeline" in names
        assert "func.call" not in names  # lower-hls-to-func ran on a clone


class TestSgeslHostCode:
    @pytest.fixture(scope="class")
    def cpp(self):
        return compile_fortran(SGESL_SOURCE).host_cpp

    def test_all_units_emitted(self, cpp):
        assert "void sgesl(" in cpp
        assert "void sgesl_update(" in cpp
        assert "void sgesl_back_update(" in cpp

    def test_subroutine_calls(self, cpp):
        assert "sgesl_update(" in cpp.split("void sgesl(")[1]

    def test_two_kernels_created(self, cpp):
        assert 'clCreateKernel(program, "sgesl_update_kernel_0"' in cpp
        assert 'clCreateKernel(program, "sgesl_back_update_kernel_1"' in cpp

    def test_balanced_braces(self, cpp):
        assert cpp.count("{") == cpp.count("}")


class TestLlvmArtifacts:
    def test_sgesl_kernels_in_llvm(self):
        program = compile_fortran(SGESL_SOURCE)
        llvm = program.bitstream.llvm_ir
        assert "define void @sgesl_update_kernel_0" in llvm
        assert "define void @sgesl_back_update_kernel_1" in llvm
        amd = program.bitstream.amd_artifact.llvm_ir
        assert "_ssdm_op_SpecPipeline" in amd
        assert "source_filename" not in amd  # downgrade stripped it

    def test_memory_spaces_in_kernel_signatures(self):
        program = compile_fortran(SAXPY_MINI)
        kernel = program.bitstream.kernels["saxpy_kernel_0"]
        for arg in kernel.func_op.body.args:
            assert arg.type.memory_space == 1


class TestDeterminism:
    def test_compilation_is_deterministic(self):
        first = compile_fortran(SAXPY_MINI)
        second = compile_fortran(SAXPY_MINI)
        from repro.ir import print_op

        assert print_op(first.device_module) == print_op(second.device_module)
        assert first.host_cpp == second.host_cpp
        assert first.bitstream.utilization().rounded() == \
            second.bitstream.utilization().rounded()

    def test_execution_is_deterministic(self):
        program = compile_fortran(SAXPY_MINI)
        rng = np.random.default_rng(8)
        x = rng.standard_normal(200).astype(np.float32)
        y = rng.standard_normal(200).astype(np.float32)

        def run():
            out = y.copy()
            result = program.executor().run(
                "saxpy", np.array(1.5, np.float32), x, out,
                np.array(200, np.int32),
            )
            return out, result.device_time_s

        out1, t1 = run()
        out2, t2 = run()
        assert out1.tobytes() == out2.tobytes()
        assert t1 == t2

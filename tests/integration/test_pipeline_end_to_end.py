"""End-to-end integration: compile + run the paper's workloads."""

import numpy as np
import pytest

from repro.baselines import HandwrittenSaxpy, HandwrittenSgesl
from repro.pipeline import compile_fortran
from repro.workloads import (
    SAXPY_SOURCE,
    SGESL_SOURCE,
    SaxpyCase,
    SgeslCase,
    saxpy_reference,
    sgefa_reference,
    sgesl_reference,
)


@pytest.fixture(scope="module")
def saxpy_program():
    return compile_fortran(SAXPY_SOURCE)


@pytest.fixture(scope="module")
def sgesl_program():
    return compile_fortran(SGESL_SOURCE)


class TestSaxpy:
    def test_correct_vs_reference(self, saxpy_program):
        case = SaxpyCase(5000)
        x, y = case.arrays()
        expected = saxpy_reference(case.a, x, y)
        saxpy_program.executor().run(
            "saxpy", np.array(case.a, np.float32), x, y,
            np.array(case.n, np.int32),
        )
        assert np.allclose(y, expected, rtol=1e-6)

    def test_matches_handwritten_hls_output(self, saxpy_program):
        case = SaxpyCase(3000)
        x, y = case.arrays()
        y_fortran, y_hls = y.copy(), y.copy()
        saxpy_program.executor().run(
            "saxpy", np.array(case.a, np.float32), x, y_fortran,
            np.array(case.n, np.int32),
        )
        HandwrittenSaxpy.build().run(case.a, x, y_hls)
        assert y_fortran.tobytes() == y_hls.tobytes()

    def test_runtime_parity_with_baseline(self, saxpy_program):
        case = SaxpyCase(100_000)
        x, y = case.arrays()
        fortran = saxpy_program.executor().run(
            "saxpy", np.array(case.a, np.float32), x, y.copy(),
            np.array(case.n, np.int32),
        )
        hls = HandwrittenSaxpy.build().run(case.a, x, y.copy())
        assert abs(hls.device_time_s / fortran.device_time_s - 1) < 0.02


class TestSgesl:
    def test_solves_system(self, sgesl_program):
        case = SgeslCase(96)
        a, lu, ipvt, b = case.system()
        x = b.copy()
        sgesl_program.executor().run(
            "sgesl", lu.copy(), x, (ipvt + 1).astype(np.int64),
            np.array(case.n, np.int32),
        )
        residual = np.abs(a.astype(np.float64) @ x - b).max()
        assert residual < 1e-3

    def test_matches_scipy(self, sgesl_program):
        import scipy.linalg

        case = SgeslCase(80)
        a, lu, ipvt, b = case.system()
        x = b.copy()
        sgesl_program.executor().run(
            "sgesl", lu.copy(), x, (ipvt + 1).astype(np.int64),
            np.array(case.n, np.int32),
        )
        expected = scipy.linalg.solve(
            a.astype(np.float64), b.astype(np.float64)
        )
        assert np.allclose(x, expected, rtol=5e-3, atol=5e-3)

    def test_matches_handwritten_hls_output(self, sgesl_program):
        case = SgeslCase(64)
        _, lu, ipvt, b = case.system()
        x_fortran = b.copy()
        sgesl_program.executor().run(
            "sgesl", lu.copy(), x_fortran, (ipvt + 1).astype(np.int64),
            np.array(case.n, np.int32),
        )
        x_hls = b.copy()
        HandwrittenSgesl.build().run(lu.copy(), x_hls, ipvt)
        assert np.allclose(x_fortran, x_hls, rtol=1e-5, atol=1e-6)

    def test_launch_count(self, sgesl_program):
        case = SgeslCase(32)
        _, lu, ipvt, b = case.system()
        result = sgesl_program.executor().run(
            "sgesl", lu.copy(), b.copy(), (ipvt + 1).astype(np.int64),
            np.array(case.n, np.int32),
        )
        assert result.launches == 2 * case.n - 1


class TestSgefaReference:
    @pytest.mark.parametrize("n", [2, 8, 33])
    def test_lu_solve_identity(self, n):
        case = SgeslCase(n)
        a, lu, ipvt, b = case.system()
        x = sgesl_reference(lu, ipvt, b)
        assert np.allclose(
            a.astype(np.float64) @ x, b, atol=1e-3
        )

    def test_pivoting_actually_happens(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.float32)
        lu, ipvt = sgefa_reference(a)
        assert ipvt[0] == 1  # row swap recorded


class TestCompiledProgramApi:
    def test_run_defaults_to_program_unit(self):
        program = compile_fortran(
            "program p\ninteger :: i\ni = 1\nend program p\n"
        )
        result = program.run()
        assert result.launches == 0

    def test_stage_capture_off_by_default(self, saxpy_program):
        assert saxpy_program.stages == []

    def test_bitstream_artifacts(self, saxpy_program):
        artifact = saxpy_program.bitstream.amd_artifact
        assert artifact.llvm_version == 7
        assert "_ssdm_op_" in artifact.llvm_ir
        assert "saxpy_kernel_0" in saxpy_program.bitstream.kernels

"""Design-space exploration extension tests (paper §4 future work).

The sweep runs on the staged :class:`~repro.session.Session` API: one
frontend + host build per workload per sweep, one device build per
point, ``simdlen`` honored inside ``lower-omp-to-hls`` instead of
rewriting the Fortran source text.
"""

import numpy as np
import pytest

from repro.dse import explore, explore_simdlen, explore_workload
from repro.session import KernelOverrides, Session
from repro.workloads import SAXPY_SOURCE

pytestmark = pytest.mark.slow  # DSE sweeps synthesize several variants


class TestGallerySweep:
    def test_explore_workload_by_name(self):
        result = explore_workload(
            "jacobi2d", simdlen_factors=(1, 2), n=64
        )
        assert len(result.points) == 2
        assert result.best is not None
        assert result.best.lut_pct > 0

    def test_frontend_compiles_once_per_sweep(self):
        """The artifact-reuse contract: a 3-point sweep parses and
        host-builds exactly once; only device builds repeat."""
        result = explore_workload(
            "saxpy", simdlen_factors=(1, 2, 4), n=2000
        )
        counters = result.session.counters
        assert counters["frontend_compiles"] == 1
        assert counters["host_device_builds"] == 1
        assert counters["device_builds"] == 3

    def test_collapse_nest_survives_simd_override(self):
        """A simdlen override on a collapse(2) workload still produces
        bit-exact output (unroll happens on the innermost dim)."""
        from repro.workloads import get_workload

        workload = get_workload("jacobi2d")
        session = Session(workload.source)
        program = session.program(KernelOverrides(simdlen=4))
        assert program is not session.program()  # distinct device build
        instance = workload.instance(workload.smoke_size)
        program.executor().run(workload.entry, *instance.args)
        workload.check(instance)

    @pytest.mark.parametrize("name", ["heat3d", "batched_gemm"])
    def test_rank3_nests_sweep(self, name):
        """DSE over the rank-3 workloads: every point feasible, outputs
        bit-exact even when the simdlen override unrolls the innermost
        dim (which drops the nest out of the whole-space fast path —
        results must not change, only wall-clock)."""
        result = explore_workload(name, simdlen_factors=(1, 2))
        assert len(result.points) == 2
        assert result.best is not None

    @pytest.mark.parametrize("name", ["heat3d", "batched_gemm"])
    def test_rank3_simd_override_stays_bit_exact(self, name):
        from repro.workloads import get_workload

        workload = get_workload(name)
        session = Session(workload.source)
        program = session.program(KernelOverrides(simdlen=2))
        instance = workload.instance(workload.smoke_size)
        program.executor().run(workload.entry, *instance.args)
        workload.check(instance)


def _saxpy_evaluator(n=5000):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)

    def evaluate(program):
        return program.executor().run(
            "saxpy", np.array(2.0, np.float32), x, y.copy(),
            np.array(n, np.int32),
        )

    return evaluate


class TestSimdlenOverride:
    def test_override_wins_over_source_directive(self):
        """SAXPY's source says simdlen(10); the override must replace it
        in the lowered device module's unroll factor."""
        session = Session(SAXPY_SOURCE)
        program = session.program(KernelOverrides(simdlen=8))
        kernel = next(iter(program.bitstream.kernels.values()))
        # main loop unrolled by the override; the remainder loop stays 1
        assert max(s.unroll_factor for s in kernel.loops.values()) == 8

    def test_override_one_disables_unrolling(self):
        session = Session(SAXPY_SOURCE)
        program = session.program(KernelOverrides(simdlen=1))
        kernel = next(iter(program.bitstream.kernels.values()))
        assert {s.unroll_factor for s in kernel.loops.values()} == {1}

    def test_unset_respects_source(self):
        session = Session(SAXPY_SOURCE)
        program = session.program()  # simdlen=None
        kernel = next(iter(program.bitstream.kernels.values()))
        assert max(s.unroll_factor for s in kernel.loops.values()) == 10


class TestExploration:
    def test_sweep_produces_points(self):
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1, 4)
        )
        assert len(result.points) == 2
        assert {p.simdlen for p in result.points} == {1, 4}
        assert result.best in result.points

    def test_budget_filters(self):
        result = explore(
            SAXPY_SOURCE,
            _saxpy_evaluator(),
            simdlen_factors=(1,),
            max_lut_pct=1.0,  # impossible: shell alone is ~8 %
        )
        assert result.best is None

    def test_best_is_fastest_feasible(self):
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1, 2, 4)
        )
        assert result.best.device_time_s == min(
            p.device_time_s for p in result.points
        )

    def test_programs_dropped_by_default(self):
        """DsePoint.program is opt-in so gallery sweeps stay flat."""
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1, 2)
        )
        assert all(p.program is None for p in result.points)
        # the heavy device builds were evicted from the session cache
        # too, not just hidden behind a None attribute
        assert result.session._builds == {}
        assert result.session.counters["device_builds"] == 2

    def test_session_source_mismatch_rejected(self):
        session = Session(SAXPY_SOURCE)
        with pytest.raises(ValueError, match="different"):
            explore(
                "subroutine other\nend subroutine other",
                _saxpy_evaluator(),
                session=session,
            )

    def test_session_board_mismatch_rejected(self):
        """board= used to be silently ignored when session= was given;
        disagreeing values must raise like the source mismatch does."""
        from repro.fpga.board import U280Board
        from repro.session import TargetConfig

        session = Session(SAXPY_SOURCE)
        other = U280Board(kernel_clock_hz=150e6)
        with pytest.raises(ValueError, match="different board"):
            explore(
                SAXPY_SOURCE, _saxpy_evaluator(), session=session,
                board=other,
            )
        # an *agreeing* board is redundant but harmless
        agreeing = Session(
            SAXPY_SOURCE, target=TargetConfig(board=U280Board())
        )
        result = explore(
            SAXPY_SOURCE, _saxpy_evaluator(), session=agreeing,
            board=U280Board(), simdlen_factors=(1,),
        )
        assert len(result.points) == 1

    def test_dsp_budget_filters(self):
        """DSP utilization is enforced alongside the LUT budget: an
        impossible DSP ceiling leaves no feasible best point."""
        result = explore(
            SAXPY_SOURCE,
            _saxpy_evaluator(),
            simdlen_factors=(1,),
            max_dsp_pct=0.0,
        )
        assert result.points[0].dsp_pct > 0.0
        assert result.best is None

    def test_keep_programs_opt_in(self):
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1, 2),
            keep_programs=True,
        )
        assert all(p.program is not None for p in result.points)
        # all points share the session's host-side artifacts
        hosts = {id(p.program.host_module) for p in result.points}
        assert len(hosts) == 1

    def test_table_render(self):
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1,),
            max_lut_pct=65.0, max_dsp_pct=55.0,
        )
        table = result.table()
        assert "simdlen" in table and "LUT %" in table
        # both enforced budgets are surfaced in the rendered table
        assert "DSP %" in table
        assert "LUT <= 65" in table and "DSP <= 55" in table


class TestGallerySessionForwarding:
    def test_shared_session_rejected_up_front(self):
        """One session cannot serve several workloads (each has its own
        source); the old behaviour was a confusing source-mismatch error
        on the *second* workload."""
        from repro.dse import explore_gallery

        session = Session(SAXPY_SOURCE)
        with pytest.raises(ValueError, match="one Session per workload"):
            explore_gallery(["saxpy", "dot"], session=session)

    def test_histogram_sweep_finds_feasible_point(self):
        result = explore_workload(
            "histogram", simdlen_factors=(1, 2), n=512
        )
        assert len(result.points) == 2
        assert result.best is not None
        assert result.best.dsp_pct <= result.max_dsp_pct

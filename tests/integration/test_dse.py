"""Design-space exploration extension tests (paper §4 future work)."""

import numpy as np
import pytest

from repro.dse import (
    DseResult,
    _with_simdlen,
    explore,
    explore_simdlen,
    explore_workload,
)
from repro.workloads import SAXPY_SOURCE

pytestmark = pytest.mark.slow  # DSE sweeps synthesize several variants


class TestGallerySweep:
    def test_explore_workload_by_name(self):
        result = explore_workload(
            "jacobi2d", simdlen_factors=(1, 2), n=64
        )
        assert len(result.points) == 2
        assert result.best is not None
        assert result.best.lut_pct > 0

    def test_collapse_nest_survives_simd_rewrite(self):
        """The simd-unrolled variant of a collapse(2) workload still
        produces bit-exact output (unroll happens on the innermost dim)."""
        from repro.pipeline import compile_fortran
        from repro.workloads import get_workload

        workload = get_workload("jacobi2d")
        variant = _with_simdlen(workload.source, 4)
        assert "simdlen(4)" in variant and "collapse(2)" in variant
        program = compile_fortran(variant)
        instance = workload.instance(workload.smoke_size)
        program.executor().run(workload.entry, *instance.args)
        workload.check(instance)


def _saxpy_evaluator(n=5000):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)

    def evaluate(program):
        return program.executor().run(
            "saxpy", np.array(2.0, np.float32), x, y.copy(),
            np.array(n, np.int32),
        )

    return evaluate


class TestSourceRewriting:
    def test_replaces_existing_simdlen(self):
        rewritten = _with_simdlen(SAXPY_SOURCE, 8)
        assert "simdlen(8)" in rewritten
        assert "simdlen(10)" not in rewritten

    def test_factor_one_drops_simd(self):
        rewritten = _with_simdlen(SAXPY_SOURCE, 1)
        assert "simd" not in rewritten

    def test_adds_simd_when_absent(self):
        bare = SAXPY_SOURCE.replace(" simd simdlen(10)", "")
        rewritten = _with_simdlen(bare, 4)
        assert "simd simdlen(4)" in rewritten


class TestExploration:
    def test_sweep_produces_points(self):
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1, 4)
        )
        assert len(result.points) == 2
        assert {p.simdlen for p in result.points} == {1, 4}
        assert result.best in result.points

    def test_budget_filters(self):
        result = explore(
            SAXPY_SOURCE,
            _saxpy_evaluator(),
            simdlen_factors=(1,),
            max_lut_pct=1.0,  # impossible: shell alone is ~8 %
        )
        assert result.best is None

    def test_best_is_fastest_feasible(self):
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1, 2, 4)
        )
        assert result.best.device_time_s == min(
            p.device_time_s for p in result.points
        )

    def test_table_render(self):
        result = explore_simdlen(
            SAXPY_SOURCE, _saxpy_evaluator(), factors=(1,)
        )
        table = result.table()
        assert "simdlen" in table and "LUT %" in table

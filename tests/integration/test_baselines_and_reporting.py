"""Baseline builders + reporting utilities."""

import numpy as np
import pytest

from repro.baselines import (
    HandwrittenSaxpy,
    HandwrittenSgesl,
    build_saxpy_module,
    build_sgesl_module,
)
from repro.ir import verify
from repro.reporting import (
    count_loc,
    format_table,
    relative_difference,
    table7_loc,
)


class TestBaselineModules:
    def test_saxpy_module_verifies(self):
        verify(build_saxpy_module())

    def test_sgesl_module_verifies(self):
        verify(build_sgesl_module())

    def test_saxpy_functional(self):
        baseline = HandwrittenSaxpy.build()
        x = np.arange(37, dtype=np.float32)
        y = np.ones(37, dtype=np.float32)
        result = baseline.run(2.0, x, y)
        assert np.allclose(y, 1.0 + 2.0 * np.arange(37))
        assert result.launches == 1
        assert result.kernel_cycles > 0

    def test_sgesl_functional(self):
        from repro.workloads import SgeslCase, sgesl_reference

        case = SgeslCase(48)
        _, lu, ipvt, b = case.system()
        baseline = HandwrittenSgesl.build()
        x = b.copy()
        baseline.run(lu.copy(), x, ipvt)
        expected = sgesl_reference(lu, ipvt, b)
        assert np.allclose(x, expected, rtol=1e-3, atol=1e-3)

    def test_clang_mac_only_in_sgesl(self):
        saxpy = build_saxpy_module()
        sgesl = build_sgesl_module()
        saxpy_macs = [
            op for op in saxpy.walk() if "clang_mac" in op.attributes
        ]
        sgesl_macs = [
            op for op in sgesl.walk() if "clang_mac" in op.attributes
        ]
        assert not saxpy_macs
        assert len(sgesl_macs) == 1


class TestReporting:
    def test_format_table(self):
        table = format_table("T", ["a", "bb"], [(1, 22), (333, 4)])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "333" in table

    def test_relative_difference(self):
        assert relative_difference(100.0, 101.0) == pytest.approx(1.0)
        assert relative_difference(100.0, 99.0) == pytest.approx(-1.0)

    def test_count_loc(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("a = 1\n\n\nb = 2\n")
        assert count_loc(f) == 2

    def test_table7_census_files_exist(self):
        rows = table7_loc()
        assert len(rows) == 4
        for row in rows:
            assert row.our_loc > 100
        components = [r.component for r in rows]
        assert "OpenMP to HLS dialect (this work)" in components

"""Workload references validated against SciPy."""

import numpy as np
import pytest
import scipy.linalg

from repro.workloads import (
    SAXPY_SIZES,
    SGESL_SIZES,
    SaxpyCase,
    SgeslCase,
    saxpy_reference,
    sgefa_reference,
    sgesl_reference,
)


class TestSaxpyCase:
    def test_arrays_deterministic(self):
        a1 = SaxpyCase(64).arrays()
        a2 = SaxpyCase(64).arrays()
        assert a1[0].tobytes() == a2[0].tobytes()
        assert a1[1].dtype == np.float32

    def test_reference(self):
        x = np.array([1.0, 2.0], np.float32)
        y = np.array([10.0, 20.0], np.float32)
        assert np.allclose(saxpy_reference(3.0, x, y), [13.0, 26.0])

    def test_paper_sizes(self):
        assert SAXPY_SIZES == (10_000, 100_000, 1_000_000, 10_000_000)
        assert SGESL_SIZES == (256, 512, 1024, 2048)


class TestSgefa:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 50])
    def test_factorization_solves(self, n):
        case = SgeslCase(n, seed=n)
        a, lu, ipvt, b = case.system()
        x = sgesl_reference(lu, ipvt, b)
        assert np.allclose(a.astype(np.float64) @ x, b, atol=1e-3)

    def test_matches_scipy_solution(self):
        case = SgeslCase(40)
        a, lu, ipvt, b = case.system()
        ours = sgesl_reference(lu, ipvt, b)
        expected = scipy.linalg.solve(a.astype(np.float64), b.astype(np.float64))
        assert np.allclose(ours, expected, rtol=1e-3, atol=1e-3)

    def test_singular_detected(self):
        singular = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ZeroDivisionError):
            sgefa_reference(singular)

    def test_pivot_indices_in_range(self):
        case = SgeslCase(25)
        _, _, ipvt, _ = case.system()
        assert np.all(ipvt >= np.arange(25) - 0)  # pivot >= current row
        assert np.all(ipvt < 25)

    def test_diagonal_dominance_keeps_conditioning(self):
        case = SgeslCase(64)
        a, *_ = case.system()
        cond = np.linalg.cond(a.astype(np.float64))
        assert cond < 1e3

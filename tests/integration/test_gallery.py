"""The workload gallery: registry, end-to-end runs, reporting."""

import numpy as np
import pytest

from repro.reporting import gallery_table
from repro.workloads import (
    GalleryWorkload,
    WorkloadInstance,
    all_workloads,
    get_workload,
    register,
    workload_names,
)

EXPECTED_NAMES = {
    "saxpy", "sgesl", "jacobi2d", "spmv", "dot", "gemm", "histogram",
    "heat3d", "batched_gemm",
}


class TestRegistry:
    def test_gallery_contents(self):
        assert set(workload_names()) == EXPECTED_NAMES

    def test_lookup_by_name(self):
        workload = get_workload("jacobi2d")
        assert workload.entry == "jacobi2d"
        assert "collapse(2)" in workload.source

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no workload"):
            get_workload("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(get_workload("saxpy"))

    def test_every_workload_is_well_formed(self):
        for workload in all_workloads():
            assert isinstance(workload, GalleryWorkload)
            assert workload.sizes, workload.name
            assert workload.smoke_size > 0
            instance = workload.instance(workload.smoke_size)
            assert isinstance(instance, WorkloadInstance)
            assert instance.expected, workload.name
            for pos in instance.expected:
                assert 0 <= pos < len(instance.args)


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_compiles_and_matches_reference(self, name):
        workload = get_workload(name)
        program = workload.compile()
        result, instance = workload.run(program)
        workload.check(instance)  # bit-exact
        assert result.launches >= 1

    def test_instances_are_deterministic(self):
        a = get_workload("spmv").instance(64)
        b = get_workload("spmv").instance(64)
        for x, y in zip(a.args, b.args):
            assert np.asarray(x).tobytes() == np.asarray(y).tobytes()

    def test_seeds_differ(self):
        a = get_workload("dot").instance(256, seed=0)
        b = get_workload("dot").instance(256, seed=1)
        assert np.asarray(a.args[0]).tobytes() != np.asarray(b.args[0]).tobytes()


class TestReporting:
    def test_gallery_table_lists_every_workload(self):
        table = gallery_table()
        for name in EXPECTED_NAMES:
            assert name in table
        assert "2-D collapse" in table


class TestPipelineEntry:
    def test_compile_workload_by_name(self):
        from repro.pipeline import compile_workload

        program = compile_workload("dot")
        workload = get_workload("dot")
        result, instance = workload.run(program)
        workload.check(instance)
        assert result.launches == 1

"""Graceful engine-tier degradation: vectorized -> JIT -> scalar.

An internal crash in a *fast* tier (the vectorizer's classification or
the block-JIT's function compilation) must never take down a run the
scalar interpreter could complete: the crash is logged at WARNING on
``repro.reliability``, recorded on the attached RunReport, and the next
tier produces the bit-identical result.
"""

import logging

import numpy as np
import pytest

import repro.ir.vectorize as vectorize
from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder, Interpreter
from repro.ir.types import FunctionType, MemRefType, f32

from tests.reliability.conftest import assert_bit_identical, run_saxpy


@pytest.fixture(autouse=True)
def _clean_analysis_cache(request):
    """Degradation poisons the per-root analysis cache (by design — one
    record per loop, not per execution).  Hand-built modules die with
    the test, but the session-scoped saxpy program's device module
    lives on: drop its entries so later suites re-classify fresh."""
    yield
    if "saxpy_program" in request.fixturenames:
        program = request.getfixturevalue("saxpy_program")
        vectorize.invalidate_analysis(program.device_module)


def _build_elementwise(n: int):
    """y[i] = x[i] + x[i]: vectorizable, so a classification crash has a
    fast path to degrade *from*."""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([vec, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y = fn.body.args
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    r = inner.insert(arith.AddF(xv, xv)).results[0]
    inner.insert(memref.Store(r, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module


def _crash(*_args, **_kwargs):
    raise RuntimeError("injected engine crash")


class TestVectorizerDegradation:
    def test_classification_crash_falls_back_to_scalar(
        self, monkeypatch, caplog
    ):
        n = 128
        rng = np.random.default_rng(5)
        x = rng.standard_normal(n).astype(np.float32)

        module = _build_elementwise(n)
        y_scalar = np.zeros(n, np.float32)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x, y_scalar
        )

        monkeypatch.setattr(vectorize, "_classify", _crash)
        module2 = _build_elementwise(n)
        y_degraded = np.zeros(n, np.float32)
        interp = Interpreter(module2, compiled=False, vectorize=True)
        with caplog.at_level(logging.WARNING, logger="repro.reliability"):
            interp.call("f", x, y_degraded)

        assert y_degraded.tobytes() == y_scalar.tobytes()
        assert any(
            "engine degradation" in r.message
            and "vectorized -> scalar" in r.message
            for r in caplog.records
        )

    def test_crash_is_recorded_once_per_loop(self, monkeypatch, caplog):
        """The poisoned analysis-cache entry means the second execution
        of the same loop goes straight to the scalar walk — one WARNING,
        not one per call."""
        n = 128
        x = np.ones(n, np.float32)
        monkeypatch.setattr(vectorize, "_classify", _crash)
        module = _build_elementwise(n)
        interp = Interpreter(module, compiled=False, vectorize=True)
        with caplog.at_level(logging.WARNING, logger="repro.reliability"):
            interp.call("f", x, np.zeros(n, np.float32))
            interp.call("f", x, np.zeros(n, np.float32))
        warnings = [
            r for r in caplog.records if "engine degradation" in r.message
        ]
        assert len(warnings) == 1


class TestJitDegradation:
    def test_compile_crash_falls_back_to_scalar(self, monkeypatch, caplog):
        n = 128
        rng = np.random.default_rng(7)
        x = rng.standard_normal(n).astype(np.float32)

        module = _build_elementwise(n)
        y_scalar = np.zeros(n, np.float32)
        Interpreter(module, compiled=False).call("f", x, y_scalar)

        monkeypatch.setattr(Interpreter, "_compiled_function", _crash)
        module2 = _build_elementwise(n)
        y_degraded = np.zeros(n, np.float32)
        interp = Interpreter(module2, compiled=True)
        with caplog.at_level(logging.WARNING, logger="repro.reliability"):
            interp.call("f", x, y_degraded)

        assert y_degraded.tobytes() == y_scalar.tobytes()
        assert any(
            "block-jit -> scalar" in r.message for r in caplog.records
        )

    def test_degraded_function_is_remembered(self, monkeypatch, caplog):
        n = 128
        x = np.ones(n, np.float32)
        monkeypatch.setattr(Interpreter, "_compiled_function", _crash)
        module = _build_elementwise(n)
        interp = Interpreter(module, compiled=True)
        with caplog.at_level(logging.WARNING, logger="repro.reliability"):
            interp.call("f", x, np.zeros(n, np.float32))
            interp.call("f", x, np.zeros(n, np.float32))
        warnings = [
            r for r in caplog.records if "engine degradation" in r.message
        ]
        assert len(warnings) == 1
        assert "f" in interp._degraded_functions


class TestDegradationInRunReport:
    def test_executor_records_degradation_and_stays_bit_identical(
        self, monkeypatch, saxpy_program, saxpy_baseline
    ):
        """Under the executor, an engine crash during the device kernel's
        loop classification degrades to the scalar walk — same outputs,
        same modelled numbers — and the RunReport names the fallback."""
        # fresh cache: the program's loops were classified by earlier
        # runs, and cached classifications short-circuit the crash
        vectorize.invalidate_analysis(saxpy_program.device_module)
        monkeypatch.setattr(vectorize, "_classify", _crash)
        monkeypatch.setattr(vectorize, "_classify_nest", _crash)
        candidate = run_saxpy(saxpy_program, compiled=False)
        assert_bit_identical(saxpy_baseline, candidate)
        report = candidate[1].report
        assert report.degradations
        assert all(
            d.tier_from == "vectorized" and d.tier_to == "scalar"
            for d in report.degradations
        )
        assert report.recovered

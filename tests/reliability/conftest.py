"""Shared fixtures for the reliability/chaos suite.

One compiled saxpy program (session-scoped — compilation is the slow
part) plus a ``run`` helper that regenerates identical inputs per call,
so baseline and fault-injected runs are comparable bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.session import Session

from tests.conftest import SAXPY_MINI

N = 64
A = 3.0


@pytest.fixture(scope="session")
def saxpy_program():
    return Session(SAXPY_MINI).program()


@pytest.fixture(scope="session")
def saxpy_baseline(saxpy_program):
    """Fault-free reference: (y_out, steps, device_time_ms, cycles)."""
    y, result = run_saxpy(saxpy_program)
    return y, result


def run_saxpy(program, **executor_kwargs):
    """One saxpy run on deterministic inputs.

    Returns ``(y, result)`` where ``y`` is the output array after the
    run; every call regenerates the same inputs from the same RNG seed.
    """
    rng = np.random.default_rng(0)
    x = rng.standard_normal(N).astype(np.float32)
    y = rng.standard_normal(N).astype(np.float32)
    executor = program.executor(**executor_kwargs)
    result = executor.run(
        "saxpy",
        np.array(A, dtype=np.float32),
        x,
        y,
        np.array(N, dtype=np.int32),
    )
    return y, result


def assert_bit_identical(baseline, candidate) -> None:
    """The chaos contract's success arm: outputs AND every modelled
    number match the fault-free baseline exactly."""
    base_y, base_result = baseline
    cand_y, cand_result = candidate
    np.testing.assert_array_equal(base_y, cand_y)
    assert cand_result.interpreter_steps == base_result.interpreter_steps
    assert cand_result.device_time_ms == base_result.device_time_ms
    assert cand_result.kernel_cycles == base_result.kernel_cycles
    assert cand_result.launches == base_result.launches
    assert cand_result.transfers == base_result.transfers

"""Chaos conformance: the bit-identical-or-typed-error contract.

For *every* seeded :class:`FaultPlan` and every engine tier, an armed
run must either

* complete **bit-identical** to the fault-free baseline — same outputs,
  same ``interpreter_steps``, ``device_time_ms`` and ``kernel_cycles``
  (retries and backoff are priced into ``result.report`` only), or
* raise a typed :class:`ReproError`,

and never return a silently-corrupted result.  Fixed seeds keep the CI
chaos job reproducible.
"""

import numpy as np
import pytest

from repro.reliability import (
    DataIntegrityError,
    DeviceAllocationError,
    DmaError,
    FaultPlan,
    FaultSpec,
    ReproError,
    RetryPolicy,
    WatchdogTimeout,
)

from tests.reliability.conftest import assert_bit_identical, run_saxpy

CHAOS_SEEDS = list(range(24))

TIERS = [
    pytest.param(dict(compiled=True, vectorize=True), id="jit+vec"),
    pytest.param(dict(compiled=True, vectorize=False), id="jit"),
    pytest.param(dict(compiled=False, vectorize=True), id="scalar+vec"),
    pytest.param(dict(compiled=False, vectorize=False), id="scalar"),
]


class TestUnarmedOverhead:
    def test_no_plan_means_no_behaviour_change(
        self, saxpy_program, saxpy_baseline
    ):
        """The hook is zero-cost when unarmed: a second fault-free run
        reproduces the baseline exactly and reports nothing."""
        candidate = run_saxpy(saxpy_program)
        assert_bit_identical(saxpy_baseline, candidate)
        report = candidate[1].report
        assert report.completed
        assert not report.faults and not report.degradations
        assert report.retries == 0 and report.backoff_s == 0.0


class TestSeededChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_bit_identical_or_typed_error(
        self, seed, saxpy_program, saxpy_baseline
    ):
        plan = FaultPlan.from_seed(seed, n_faults=2)
        try:
            candidate = run_saxpy(saxpy_program, fault_plan=plan)
        except ReproError:
            return  # the typed-error arm of the contract
        assert_bit_identical(saxpy_baseline, candidate)
        report = candidate[1].report
        assert report.completed
        # every recorded retry was priced into the report's backoff clock
        assert report.retries == 0 or report.backoff_s > 0.0

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:8])
    def test_contract_holds_on_every_tier(
        self, seed, tier, saxpy_program, saxpy_baseline
    ):
        """Fault matching keys on logical site occurrences, so the same
        plan behaves identically under every engine tier."""
        plan = FaultPlan.from_seed(seed, n_faults=1)
        outcomes = []
        for _ in range(2):  # also: same plan, same tier => same outcome
            try:
                candidate = run_saxpy(
                    saxpy_program, fault_plan=plan, **tier
                )
            except ReproError as error:
                outcomes.append(type(error).__name__)
                continue
            assert_bit_identical(saxpy_baseline, candidate)
            outcomes.append("ok")
        assert outcomes[0] == outcomes[1]


class TestDirectedFaults:
    """Hand-written specs pinning each site/kind's exact semantics."""

    def test_transient_dma_start_recovers_bit_identically(
        self, saxpy_program, saxpy_baseline
    ):
        plan = FaultPlan([FaultSpec(site="dma_start", transient=True)])
        candidate = run_saxpy(saxpy_program, fault_plan=plan)
        assert_bit_identical(saxpy_baseline, candidate)
        report = candidate[1].report
        assert report.faults_hit == 1 and report.retries == 1
        assert report.recovered

    def test_transient_dma_wait_recovers_on_compiled_tier(
        self, saxpy_program, saxpy_baseline
    ):
        """memref.wait folds to a closure on the compiled tier; its
        occurrence stream must still feed the fault gate."""
        plan = FaultPlan([FaultSpec(site="dma_wait", transient=True)])
        for tier in (dict(compiled=True), dict(compiled=False)):
            candidate = run_saxpy(saxpy_program, fault_plan=plan, **tier)
            assert_bit_identical(saxpy_baseline, candidate)
            assert candidate[1].report.faults_hit == 1

    def test_persistent_alloc_raises_allocation_error(self, saxpy_program):
        plan = FaultPlan([FaultSpec(site="alloc", transient=False)])
        with pytest.raises(DeviceAllocationError):
            run_saxpy(saxpy_program, fault_plan=plan)

    def test_persistent_dma_raises_dma_error(self, saxpy_program):
        plan = FaultPlan([FaultSpec(site="dma_start", transient=False)])
        with pytest.raises(DmaError):
            run_saxpy(saxpy_program, fault_plan=plan)

    def test_transient_exhausting_retries_raises(self, saxpy_program):
        plan = FaultPlan(
            [FaultSpec(site="dma_start", transient=True, fail_count=5)]
        )
        with pytest.raises(DmaError) as excinfo:
            run_saxpy(
                saxpy_program,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=2),
            )
        assert excinfo.value.transient

    def test_transient_bitflip_rolls_back_and_recovers(
        self, saxpy_program, saxpy_baseline
    ):
        plan = FaultPlan(
            [FaultSpec(site="kernel_launch", kind="bitflip", bit=9)]
        )
        candidate = run_saxpy(saxpy_program, fault_plan=plan)
        assert_bit_identical(saxpy_baseline, candidate)
        event = candidate[1].report.faults[0]
        assert event.kind == "bitflip" and "checksum" in event.detail

    def test_persistent_bitflip_raises_never_corrupts(
        self, saxpy_program, saxpy_baseline
    ):
        """The detected corruption is rolled back *before* the typed
        raise: no silently-flipped bit survives in host-visible arrays."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(64).astype(np.float32)
        y = rng.standard_normal(64).astype(np.float32)
        y_before = y.copy()
        plan = FaultPlan(
            [
                FaultSpec(
                    site="kernel_launch", kind="bitflip", transient=False
                )
            ]
        )
        executor = saxpy_program.executor(fault_plan=plan)
        with pytest.raises(DataIntegrityError):
            executor.run(
                "saxpy",
                np.array(3.0, dtype=np.float32),
                x,
                y,
                np.array(64, dtype=np.int32),
            )
        # rolled back to the pre-launch snapshot: unchanged, not corrupted
        np.testing.assert_array_equal(y, y_before)

    def test_persistent_hang_raises_watchdog_timeout(self, saxpy_program):
        plan = FaultPlan(
            [
                FaultSpec(
                    site="kernel_launch",
                    kind="hang",
                    transient=False,
                    hang_steps=8,
                )
            ]
        )
        with pytest.raises(WatchdogTimeout, match="watchdog step budget"):
            run_saxpy(saxpy_program, fault_plan=plan)

    def test_unmatched_occurrence_is_a_clean_run(
        self, saxpy_program, saxpy_baseline
    ):
        """An index beyond the run's site occurrences never fires: the
        run is fault-free and the report stays empty."""
        plan = FaultPlan([FaultSpec(site="alloc", index=500)])
        candidate = run_saxpy(saxpy_program, fault_plan=plan)
        assert_bit_identical(saxpy_baseline, candidate)
        assert candidate[1].report.faults_hit == 0


class TestExecutorReusableAfterFault:
    def test_session_program_survives_failed_run(
        self, saxpy_program, saxpy_baseline
    ):
        """A failed executor run must not poison the compiled program:
        a fresh executor from the same cached artifacts reproduces the
        baseline."""
        plan = FaultPlan([FaultSpec(site="alloc", transient=False)])
        with pytest.raises(DeviceAllocationError):
            run_saxpy(saxpy_program, fault_plan=plan)
        candidate = run_saxpy(saxpy_program)
        assert_bit_identical(saxpy_baseline, candidate)

"""Chaos conformance on the segmented tier (PR 7).

The saxpy matrix in ``test_chaos_conformance.py`` pins the
bit-identical-or-typed-error contract on an elementwise kernel; spmv
(CSR row loops) and sgesl (triangular updates) extend the same
fixed-seed matrix to ``nest_segmented`` — the whole-space evaluator
with runtime monotone proofs, per-row folds and deferred writebacks
must hold the exact contract under every injected fault and tier.
"""

import numpy as np
import pytest

from repro.reliability import FaultPlan, ReproError
from repro.workloads import get_workload

WORKLOADS = ("spmv", "sgesl")
CHAOS_SEEDS = list(range(12))
N = 256

TIERS = [
    pytest.param(dict(compiled=True, vectorize=True), id="jit+vec"),
    pytest.param(dict(compiled=True, vectorize=False), id="jit"),
    pytest.param(dict(compiled=False, vectorize=True), id="scalar+vec"),
    pytest.param(dict(compiled=False, vectorize=False), id="scalar"),
]

_PROGRAMS: dict[str, object] = {}


def _program(name: str):
    if name not in _PROGRAMS:
        _PROGRAMS[name] = get_workload(name).compile()
    return _PROGRAMS[name]


def _run(name: str, **executor_kwargs):
    """One run on deterministic inputs; returns (outputs, result)."""
    workload = get_workload(name)
    program = _program(name)
    instance = workload.instance(N)
    args = [
        arg.copy() if isinstance(arg, np.ndarray) else arg
        for arg in instance.args
    ]
    result = program.executor(**executor_kwargs).run(workload.entry, *args)
    outputs = {pos: args[pos] for pos in instance.expected}
    return outputs, result


def _assert_bit_identical(baseline, candidate) -> None:
    base_out, base_result = baseline
    cand_out, cand_result = candidate
    assert base_out.keys() == cand_out.keys()
    for pos in base_out:
        np.testing.assert_array_equal(base_out[pos], cand_out[pos])
    assert cand_result.interpreter_steps == base_result.interpreter_steps
    assert cand_result.device_time_ms == base_result.device_time_ms
    assert cand_result.kernel_cycles == base_result.kernel_cycles
    assert cand_result.launches == base_result.launches


@pytest.fixture(scope="module", params=WORKLOADS)
def segmented_case(request):
    name = request.param
    return name, _run(name)


class TestSeededChaosSegmented:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_bit_identical_or_typed_error(self, seed, segmented_case):
        name, baseline = segmented_case
        plan = FaultPlan.from_seed(seed, n_faults=2)
        try:
            candidate = _run(name, fault_plan=plan)
        except ReproError:
            return  # the typed-error arm of the contract
        _assert_bit_identical(baseline, candidate)
        assert candidate[1].report.completed

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:2])
    def test_contract_holds_on_every_tier(self, seed, tier, segmented_case):
        """Fault matching keys on logical site occurrences, so a plan's
        outcome must not depend on which engine tier executes the
        segmented kernel."""
        name, baseline = segmented_case
        plan = FaultPlan.from_seed(seed, n_faults=1)
        try:
            candidate = _run(name, fault_plan=plan, **tier)
        except ReproError as error:
            outcome = type(error).__name__
        else:
            _assert_bit_identical(baseline, candidate)
            outcome = "ok"
        # same plan, same tier => same outcome on a rerun
        try:
            candidate = _run(name, fault_plan=plan, **tier)
        except ReproError as error:
            assert type(error).__name__ == outcome
        else:
            assert outcome == "ok"
            _assert_bit_identical(baseline, candidate)

"""Watchdog step budgets and the retry/backoff machinery end to end."""

import numpy as np
import pytest

from repro.reliability import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    WatchdogTimeout,
)

from tests.reliability.conftest import assert_bit_identical, run_saxpy


class TestWatchdog:
    def test_generous_budget_reproduces_baseline(
        self, saxpy_program, saxpy_baseline
    ):
        """A watchdog that never fires changes nothing: steps, time and
        cycles all match the unwatched baseline."""
        candidate = run_saxpy(saxpy_program, watchdog_steps=10_000_000)
        assert_bit_identical(saxpy_baseline, candidate)
        assert candidate[1].report.watchdog_budget == 10_000_000

    def test_tiny_budget_raises_typed_timeout(self, saxpy_program):
        with pytest.raises(WatchdogTimeout, match="watchdog step budget"):
            run_saxpy(saxpy_program, watchdog_steps=4)

    def test_timeout_carries_kernel_name(self, saxpy_program):
        with pytest.raises(WatchdogTimeout) as excinfo:
            run_saxpy(saxpy_program, watchdog_steps=4)
        assert excinfo.value.kernel is not None
        assert excinfo.value.stage == "device_runtime"

    def test_budget_is_per_run_not_cumulative(self, saxpy_program):
        """Two launches in sequence each get the full budget — the
        watchdog narrows ``max_steps`` relative to the current count."""
        executor = saxpy_program.executor(watchdog_steps=5_000)
        args = lambda: (  # noqa: E731 - tiny fixture-local factory
            np.array(3.0, dtype=np.float32),
            np.ones(64, dtype=np.float32),
            np.ones(64, dtype=np.float32),
            np.array(64, dtype=np.int32),
        )
        executor.run("saxpy", *args())
        executor.run("saxpy", *args())  # must not trip on accumulated steps


class TestTransientHangRecovery:
    def test_recovers_bit_identically_with_retries_in_report(
        self, saxpy_program, saxpy_baseline
    ):
        plan = FaultPlan(
            [
                FaultSpec(
                    site="kernel_launch",
                    kind="hang",
                    transient=True,
                    fail_count=2,
                    hang_steps=8,
                )
            ]
        )
        candidate = run_saxpy(saxpy_program, fault_plan=plan)
        assert_bit_identical(saxpy_baseline, candidate)
        report = candidate[1].report
        assert report.faults_hit == 2  # two hung attempts
        assert report.retries == 2
        assert [e.kind for e in report.faults] == ["hang", "hang"]
        assert report.backoff_s > 0.0

    def test_retry_policy_bounds_hang_recovery(self, saxpy_program):
        plan = FaultPlan(
            [
                FaultSpec(
                    site="kernel_launch",
                    kind="hang",
                    transient=True,
                    fail_count=2,
                    hang_steps=8,
                )
            ]
        )
        with pytest.raises(WatchdogTimeout):
            run_saxpy(
                saxpy_program,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=2),
            )

    def test_aborted_attempts_leave_no_step_trace(
        self, saxpy_program, saxpy_baseline
    ):
        """The contract's sharpest edge: a hung attempt retires device
        steps before the watchdog trips, and every one of them must be
        rolled back for the recovered run to stay bit-identical."""
        plan = FaultPlan(
            [
                FaultSpec(
                    site="kernel_launch",
                    kind="hang",
                    transient=True,
                    hang_steps=32,
                )
            ]
        )
        candidate = run_saxpy(saxpy_program, fault_plan=plan)
        assert (
            candidate[1].interpreter_steps
            == saxpy_baseline[1].interpreter_steps
        )
        assert candidate[1].kernel_cycles == saxpy_baseline[1].kernel_cycles

"""Error taxonomy: stages, context formatting, foreign-error adoption."""

import pytest

from repro.ir.core import IRError
from repro.reliability.errors import (
    DeviceBuildError,
    DeviceRuntimeError,
    FrontendError,
    LoweringError,
    ReproError,
    WatchdogTimeout,
    wrap_error,
)


class TestHierarchy:
    def test_every_stage_error_is_a_repro_error(self):
        for cls in (
            FrontendError,
            LoweringError,
            DeviceBuildError,
            DeviceRuntimeError,
            WatchdogTimeout,
        ):
            assert issubclass(cls, ReproError)

    def test_ir_facing_errors_stay_ir_errors(self):
        """Lowering/device-build failures must keep matching existing
        ``except IRError`` clauses across the transform/backend layers."""
        assert issubclass(LoweringError, IRError)
        assert issubclass(DeviceBuildError, IRError)

    def test_default_stage_and_context_suffix(self):
        error = LoweringError("boom", kernel="saxpy", context="omp.wsloop")
        assert error.stage == "lowering"
        assert error.kernel == "saxpy"
        assert "stage=lowering" in str(error)
        assert "kernel=saxpy" in str(error)
        assert "context=omp.wsloop" in str(error)

    def test_transient_flag(self):
        assert not DeviceRuntimeError("x").transient
        assert DeviceRuntimeError("x", transient=True).transient


class TestWrapError:
    def test_wrapped_error_satisfies_both_isinstance(self):
        original = ValueError("bad value")
        adopted = wrap_error(original, FrontendError, context="parse")
        assert isinstance(adopted, FrontendError)
        assert isinstance(adopted, ValueError)
        assert "bad value" in str(adopted)
        assert "context=parse" in str(adopted)

    def test_already_taxonomy_error_is_returned_unchanged(self):
        error = FrontendError("x")
        assert wrap_error(error, FrontendError) is error

    def test_wrapped_class_is_cached(self):
        a = wrap_error(KeyError("a"), LoweringError)
        b = wrap_error(KeyError("b"), LoweringError)
        assert type(a) is type(b)

    def test_frontend_errors_keep_their_original_type(self):
        """Existing ``pytest.raises(SemanticError)`` / FortranSyntaxError
        tests keep passing after adoption by the frontend driver."""
        from repro.frontend.driver import compile_to_core
        from repro.frontend.lexer import FortranSyntaxError

        with pytest.raises(FortranSyntaxError) as excinfo:
            compile_to_core("program p\n  crash here\nend program")
        assert isinstance(excinfo.value, FrontendError)
        assert excinfo.value.__cause__ is not None

"""FaultPlan/FaultSpec determinism and validation, RetryPolicy maths."""

import pytest

from repro.reliability.faults import KINDS, SITES, FaultPlan, FaultSpec
from repro.reliability.report import RunReport
from repro.reliability.retry import DEFAULT_RETRY_POLICY, RetryPolicy


class TestFaultSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="warp-core")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="alloc", kind="gamma-ray")

    def test_hang_and_bitflip_are_kernel_only(self):
        for kind in ("hang", "bitflip"):
            with pytest.raises(ValueError, match="kernel_launch"):
                FaultSpec(site="dma_start", kind=kind)
            FaultSpec(site="kernel_launch", kind=kind)  # fine

    def test_fail_count_must_be_positive(self):
        with pytest.raises(ValueError, match="fail_count"):
            FaultSpec(site="alloc", fail_count=0)


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        for seed in range(20):
            a = FaultPlan.from_seed(seed, n_faults=3)
            b = FaultPlan.from_seed(seed, n_faults=3)
            assert a.specs == b.specs

    def test_different_seeds_differ_somewhere(self):
        plans = {FaultPlan.from_seed(s, n_faults=2).specs for s in range(32)}
        assert len(plans) > 1

    def test_generated_specs_are_valid(self):
        for seed in range(64):
            for spec in FaultPlan.from_seed(seed, n_faults=2):
                assert spec.site in SITES
                assert spec.kind in KINDS
                if spec.site != "kernel_launch":
                    assert spec.kind == "fail"


class TestRetryPolicy:
    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_base_s=0.5, backoff_factor=3.0
        )
        assert policy.backoff_s(1) == 0.5
        assert policy.backoff_s(2) == 1.5
        assert policy.backoff_s(3) == 4.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.0)


class TestController:
    def test_occurrence_matching(self):
        plan = FaultPlan([FaultSpec(site="dma_start", index=2)])
        ctrl = plan.controller(RunReport(), DEFAULT_RETRY_POLICY)
        assert ctrl.poll("dma_start") is None
        assert ctrl.poll("dma_start") is None
        assert ctrl.poll("dma_start") is plan.specs[0]
        assert ctrl.poll("dma_start") is None

    def test_kernel_filter(self):
        spec = FaultSpec(site="kernel_launch", index=0, kernel="gemm")
        ctrl = FaultPlan([spec]).controller(RunReport())
        assert ctrl.poll("kernel_launch", kernel="saxpy") is None
        # occurrence 0 was consumed by the non-matching kernel
        assert ctrl.poll("kernel_launch", kernel="gemm") is None

    def test_transient_fires_until_fail_count(self):
        spec = FaultSpec(site="alloc", transient=True, fail_count=2)
        ctrl = FaultPlan([spec]).controller(RunReport())
        assert ctrl.fires(spec, 1)
        assert ctrl.fires(spec, 2)
        assert not ctrl.fires(spec, 3)

    def test_persistent_always_fires(self):
        spec = FaultSpec(site="alloc", transient=False)
        ctrl = FaultPlan([spec]).controller(RunReport())
        assert all(ctrl.fires(spec, k) for k in range(1, 10))

    def test_resolve_recovers_and_prices_retries_into_report(self):
        report = RunReport()
        spec = FaultSpec(site="alloc", transient=True, fail_count=1)
        ctrl = FaultPlan([spec]).controller(report, DEFAULT_RETRY_POLICY)
        ctrl.resolve(spec, "alloc")  # must return, not raise
        assert report.faults_hit == 1
        assert report.retries == 1
        assert report.backoff_s == DEFAULT_RETRY_POLICY.backoff_s(1)

    def test_resolve_raises_typed_error_when_exhausted(self):
        from repro.reliability.errors import DeviceAllocationError

        report = RunReport()
        spec = FaultSpec(site="alloc", transient=True, fail_count=99)
        ctrl = FaultPlan([spec]).controller(report, DEFAULT_RETRY_POLICY)
        with pytest.raises(DeviceAllocationError) as excinfo:
            ctrl.resolve(spec, "alloc")
        assert excinfo.value.transient  # gave up retrying, still transient
        assert report.faults_hit == DEFAULT_RETRY_POLICY.max_attempts

"""Host-side (non-target) ``!$omp parallel do`` support."""

import numpy as np

from repro.frontend import compile_to_core
from repro.ir import Interpreter
from repro.pipeline import compile_fortran

HOST_PARALLEL = """
subroutine scale(a, n)
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
!$omp parallel do
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
!$omp end parallel do
end subroutine scale
"""


class TestHostParallelDo:
    def test_no_target_ops(self):
        module = compile_to_core(HOST_PARALLEL).module
        names = {op.name for op in module.walk()}
        assert "omp.parallel" in names
        assert "omp.wsloop" in names
        assert "omp.target" not in names
        assert "omp.map_info" not in names

    def test_sequential_semantics(self):
        module = compile_to_core(HOST_PARALLEL).module
        a = np.arange(50, dtype=np.float32)
        Interpreter(module).call("scale", a, np.array(50, np.int32))
        assert np.allclose(a, 2.0 * np.arange(50))

    def test_full_pipeline_keeps_host_loop(self):
        """With no target region, nothing is offloaded: no kernels, no
        transfers — the loop runs on the host."""
        program = compile_fortran(HOST_PARALLEL)
        assert program.bitstream.kernels == {}
        a = np.arange(30, dtype=np.float32)
        result = program.executor().run("scale", a, np.array(30, np.int32))
        assert np.allclose(a, 2.0 * np.arange(30))
        assert result.launches == 0
        assert result.transfers == 0

    def test_host_codegen_emits_pragma(self):
        program = compile_fortran(HOST_PARALLEL)
        assert "#pragma omp parallel" in program.host_cpp
        assert "#pragma omp for" in program.host_cpp

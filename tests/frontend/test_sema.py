"""Semantic analysis tests."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_source
from repro.frontend.sema import SemanticError, analyze, expr_type


def analyze_source(source: str):
    return analyze(parse_source(source))


def analyze_body(body: str, decls: str = ""):
    return analyze_source(f"program t\n{decls}\n{body}\nend program\n")


class TestSymbols:
    def test_undeclared_rejected(self):
        with pytest.raises(SemanticError, match="undeclared"):
            analyze_body("x = 1")

    def test_duplicate_rejected(self):
        with pytest.raises(SemanticError, match="duplicate"):
            analyze_body("", "integer :: x\ninteger :: x")

    def test_undeclared_dummy_rejected(self):
        with pytest.raises(SemanticError, match="dummy argument"):
            analyze_source("subroutine s(a)\nend subroutine\n")

    def test_symbol_properties(self):
        info = analyze_source(
            "subroutine s(a, n)\ninteger, intent(in) :: n\n"
            "real, intent(inout) :: a(n)\nend subroutine\n"
        ).units["s"]
        a = info.symbol("a")
        assert a.is_dummy and a.is_array and a.rank == 1
        assert a.intent == "inout"
        n = info.symbol("n")
        assert n.type.base == "integer" and not n.is_array


class TestParameters:
    def test_folding(self):
        info = analyze_body(
            "", "integer, parameter :: n = 4 * 8 + 2"
        ).units["t"]
        assert info.symbol("n").param_value == 34

    def test_parameter_chain(self):
        info = analyze_body(
            "", "integer, parameter :: a = 3\ninteger, parameter :: b = a * 2"
        ).units["t"]
        assert info.symbol("b").param_value == 6

    def test_non_constant_rejected(self):
        with pytest.raises(SemanticError, match="not constant"):
            analyze_body("", "integer :: m\ninteger, parameter :: n = m")

    def test_assignment_to_parameter_rejected(self):
        with pytest.raises(SemanticError, match="parameter"):
            analyze_body("n = 5", "integer, parameter :: n = 4")


class TestChecks:
    def test_rank_mismatch(self):
        with pytest.raises(SemanticError, match="rank"):
            analyze_body("x = a(1, 2)", "real :: a(5)\nreal :: x")

    def test_subscripted_scalar(self):
        with pytest.raises(SemanticError, match="not an array"):
            analyze_body("y = x(1)", "real :: x, y")

    def test_whole_array_in_expression(self):
        with pytest.raises(SemanticError, match="whole-array"):
            analyze_body("x = a + 1.0", "real :: a(5)\nreal :: x")

    def test_whole_array_assignment(self):
        with pytest.raises(SemanticError, match="whole-array"):
            analyze_body("a = 0.0", "real :: a(5)")

    def test_do_var_must_be_integer(self):
        with pytest.raises(SemanticError, match="scalar integer"):
            analyze_body(
                "do r = 1, 3\nend do", "real :: r"
            )

    def test_array_reduction_rejected(self):
        body = (
            "!$omp target parallel do reduction(+: a)\n"
            "do i = 1, 4\na(i) = 0.0\nend do\n"
            "!$omp end target parallel do"
        )
        with pytest.raises(SemanticError, match="must be scalar"):
            analyze_body(body, "real :: a(4)\ninteger :: i")

    def test_call_arity_checked(self):
        source = (
            "subroutine s(a)\nreal :: a\nend subroutine\n"
            "program t\nreal :: x\ncall s(x, x)\nend program\n"
        )
        with pytest.raises(SemanticError, match="expects 1"):
            analyze_source(source)

    def test_unknown_subroutine(self):
        with pytest.raises(SemanticError, match="unknown subroutine"):
            analyze_body("call ghost()", "")


class TestIntrinsics:
    def test_intrinsic_resolution(self):
        info = analyze_body(
            "x = sqrt(y)", "real :: x, y"
        ).units["t"]
        stmt = info.unit.body[0]
        assert isinstance(stmt.value, ast.IntrinsicCall)
        assert stmt.value.name == "sqrt"

    def test_intrinsic_shadowed_by_array(self):
        info = analyze_body(
            "x = abs(2)", "real :: x\nreal :: abs(3)"
        ).units["t"]
        stmt = info.unit.body[0]
        assert isinstance(stmt.value, ast.ArrayRef)


class TestExprTypes:
    def _symbols(self):
        info = analyze_body(
            "", "integer :: i\nreal :: r\nreal(8) :: d"
        ).units["t"]
        return info.symbols

    def test_promotion(self):
        symbols = self._symbols()
        mixed = ast.BinOp(op="+", lhs=ast.VarRef(name="i"), rhs=ast.VarRef(name="r"))
        assert expr_type(mixed, symbols) == ast.TypeSpec("real", 4)
        wide = ast.BinOp(op="*", lhs=ast.VarRef(name="r"), rhs=ast.VarRef(name="d"))
        assert expr_type(wide, symbols) == ast.TypeSpec("real", 8)

    def test_comparison_is_logical(self):
        symbols = self._symbols()
        cmp = ast.BinOp(op="<", lhs=ast.VarRef(name="i"), rhs=ast.IntLit(value=2))
        assert expr_type(cmp, symbols).base == "logical"

"""``collapse(n)`` frontend support: directive, lowering, loop nests."""

import pytest

from repro.dialects import omp
from repro.frontend.directives import parse_directive, print_directive
from repro.frontend.driver import compile_to_fir
from repro.frontend.lowering import LoweringError
from repro.frontend.lexer import FortranSyntaxError
from repro.frontend.sema import SemanticError

NEST_2D = """
subroutine sweep(a, b, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a(n, n)
  real, intent(inout) :: b(n, n)
  integer :: i, j
!$omp target parallel do collapse(2)
  do i = 1, n
    do j = 1, n
      b(i, j) = a(i, j) + 1.0
    end do
  end do
!$omp end target parallel do
end subroutine sweep
"""


class TestDirective:
    def test_collapse_clause_parsed(self):
        directive = parse_directive("target parallel do collapse(2)")
        assert directive.clauses.collapse == 2

    def test_collapse_requires_positive_integer(self):
        with pytest.raises(FortranSyntaxError, match="collapse"):
            parse_directive("target parallel do collapse(x)")

    def test_collapse_round_trips(self):
        directive = parse_directive("target parallel do collapse(3)")
        assert "collapse(3)" in print_directive(directive)

    @pytest.mark.parametrize(
        "text",
        [
            "target data map(tofrom: a) collapse(2)",
            "target update to(a) collapse(3)",
            "target collapse(2)",
        ],
    )
    def test_collapse_rejected_off_loop_directives(self, text):
        """collapse names a loop-nest depth; data/update/bare-target
        constructs have no associated loop to collapse."""
        with pytest.raises(FortranSyntaxError, match="work-sharing loop"):
            parse_directive(text)


NEST_3D = """
subroutine sweep3(a, b, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a(n, n, n)
  real, intent(inout) :: b(n, n, n)
  integer :: i, j, k
!$omp target parallel do collapse(3)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        b(i, j, k) = a(i, j, k) + 1.0
      end do
    end do
  end do
!$omp end target parallel do
end subroutine sweep3
"""


class TestLoopNestOp:
    def test_rank_two_nest(self):
        result = compile_to_fir(NEST_2D)
        nests = [
            op for op in result.module.walk()
            if isinstance(op, omp.LoopNestOp)
        ]
        assert len(nests) == 1
        nest = nests[0]
        assert nest.rank == 2
        assert len(nest.induction_vars) == 2
        assert len(nest.lbs) == len(nest.ubs) == len(nest.steps) == 2

    def test_rank_three_nest(self):
        result = compile_to_fir(NEST_3D)
        nest = next(
            op for op in result.module.walk()
            if isinstance(op, omp.LoopNestOp)
        )
        assert nest.rank == 3
        assert len(nest.induction_vars) == 3
        assert len(nest.lbs) == len(nest.ubs) == len(nest.steps) == 3

    def test_rank_one_unchanged(self):
        source = NEST_2D.replace(" collapse(2)", "").replace(
            "b(i, j) = a(i, j) + 1.0", "b(i, i) = a(i, i) + 1.0"
        )
        result = compile_to_fir(source)
        nest = next(
            op for op in result.module.walk()
            if isinstance(op, omp.LoopNestOp)
        )
        assert nest.rank == 1
        assert nest.lb is nest.lbs[0]


class TestLoweringErrors:
    def test_imperfect_nest_rejected(self):
        source = NEST_2D.replace(
            "  do i = 1, n\n    do j = 1, n",
            "  do i = 1, n\n    b(i, 1) = 0.0\n    do j = 1, n",
        )
        with pytest.raises(SemanticError, match="perfect nest"):
            compile_to_fir(source)

    def test_inner_bound_may_not_use_outer_iv(self):
        source = NEST_2D.replace("do j = 1, n", "do j = 1, i")
        with pytest.raises(LoweringError, match="outer collapsed"):
            compile_to_fir(source)


class TestSemantics:
    def test_rank3_nest_interprets_like_python(self):
        import numpy as np

        from repro.frontend.driver import compile_to_core
        from repro.ir.interpreter import Interpreter

        result = compile_to_core(NEST_3D)
        n = 4
        a = np.arange(n**3, dtype=np.float32).reshape(n, n, n)
        b = np.zeros((n, n, n), dtype=np.float32)
        Interpreter(result.module).call(
            "sweep3", a, b, np.array(n, np.int32)
        )
        assert np.array_equal(b, a + np.float32(1.0))

    def test_rank3_nest_scalar_and_vector_tiers_agree(self):
        import numpy as np

        from repro.frontend.driver import compile_to_core
        from repro.ir.interpreter import Interpreter

        n = 6  # 216 iterations >= the vector threshold
        outs = []
        steps = []
        for vectorize in (False, True):
            result = compile_to_core(NEST_3D)
            a = np.arange(n**3, dtype=np.float32).reshape(n, n, n)
            b = np.zeros((n, n, n), dtype=np.float32)
            interp = Interpreter(
                result.module, compiled=False, vectorize=vectorize
            )
            interp.call("sweep3", a, b, np.array(n, np.int32))
            outs.append(b.tobytes())
            steps.append(interp.steps)
        assert outs[0] == outs[1]
        assert steps[0] == steps[1]

    def test_nest_interprets_like_python(self):
        import numpy as np

        from repro.frontend.driver import compile_to_core
        from repro.ir.interpreter import Interpreter

        result = compile_to_core(NEST_2D)
        n = 5
        a = np.arange(n * n, dtype=np.float32).reshape(n, n)
        b = np.zeros((n, n), dtype=np.float32)
        Interpreter(result.module).call(
            "sweep", a, b, np.array(n, np.int32)
        )
        assert np.array_equal(b, a + np.float32(1.0))

    def test_nest_scalar_and_vector_tiers_agree(self):
        import numpy as np

        from repro.frontend.driver import compile_to_core
        from repro.ir.interpreter import Interpreter

        n = 16  # 256 iterations >= the vector threshold
        outs = []
        steps = []
        for vectorize in (False, True):
            result = compile_to_core(NEST_2D)
            a = np.arange(n * n, dtype=np.float32).reshape(n, n)
            b = np.zeros((n, n), dtype=np.float32)
            interp = Interpreter(
                result.module, compiled=False, vectorize=vectorize
            )
            interp.call("sweep", a, b, np.array(n, np.int32))
            outs.append(b.tobytes())
            steps.append(interp.steps)
        assert outs[0] == outs[1]
        assert steps[0] == steps[1]


class TestHostCollapse:
    def test_host_parallel_do_collapse_codegen_and_run(self):
        """A bare (non-target) parallel do collapse(2) must survive the
        host C++ printer and execute tier-identically."""
        import numpy as np

        from repro.pipeline import compile_fortran

        source = NEST_2D.replace(
            "!$omp target parallel do collapse(2)",
            "!$omp parallel do collapse(2)",
        ).replace("!$omp end target parallel do", "!$omp end parallel do")
        program = compile_fortran(source)
        assert program.host_cpp.count("for (int64_t") >= 2
        n = 12
        a = np.arange(n * n, dtype=np.float32).reshape(n, n)
        b = np.zeros((n, n), np.float32)
        program.executor().run("sweep", a, b, np.array(n, np.int32))
        assert np.array_equal(b, a + np.float32(1.0))


class TestNestSlicing:
    def test_sliced_evaluation_is_bit_identical(self, monkeypatch):
        """Above _MAX_NEST_ELEMS the nest is evaluated one outer slice at
        a time; results and step accounting must not change."""
        import numpy as np

        from repro.frontend.driver import compile_to_core
        from repro.ir import vectorize
        from repro.ir.interpreter import Interpreter

        n = 20  # 400 iterations
        outs = []
        steps = []
        for cap in (1 << 22, 64):  # single-shot vs forced slicing
            monkeypatch.setattr(vectorize, "_MAX_NEST_ELEMS", cap)
            result = compile_to_core(NEST_2D)
            a = np.arange(n * n, dtype=np.float32).reshape(n, n)
            b = np.zeros((n, n), np.float32)
            interp = Interpreter(result.module, compiled=False)
            interp.call("sweep", a, b, np.array(n, np.int32))
            outs.append(b.tobytes())
            steps.append(interp.steps)
        assert outs[0] == outs[1]
        assert steps[0] == steps[1]
        assert outs[0] == (
            np.arange(n * n, dtype=np.float32).reshape(n, n)
            + np.float32(1.0)
        ).tobytes()

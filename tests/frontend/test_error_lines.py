"""Every frontend rejection carries the offending source line.

``FortranSyntaxError``/``SemanticError`` expose ``.line`` (1-based, -1
when genuinely unknown) and prefix their message with ``line N:``; the
reliability wrapper propagates the line onto the wrapped
``FrontendError`` so tooling (the lint CLI, the service) never has to
re-parse messages.
"""

import pytest

from repro.frontend.lexer import FortranSyntaxError
from repro.frontend.parser import parse_source
from repro.frontend.sema import SemanticError, analyze


def parse_error(source: str) -> FortranSyntaxError:
    with pytest.raises(FortranSyntaxError) as excinfo:
        parse_source(source)
    return excinfo.value


def sema_error(source: str) -> SemanticError:
    with pytest.raises(SemanticError) as excinfo:
        analyze(parse_source(source))
    return excinfo.value


class TestParserLines:
    def test_empty_source(self):
        err = parse_error("")
        assert err.line == 1
        assert "line 1" in str(err)

    def test_bad_intent_points_at_declaration_line(self):
        err = parse_error(
            "subroutine s(x)\n"
            "  real, intent(foo) :: x\n"
            "end subroutine\n"
        )
        assert err.line == 2
        assert "foo" in str(err)

    def test_missing_do_keyword(self):
        err = parse_error(
            "program t\n"
            "  integer :: i\n"
            "  do i = 1, 10\n"
            "  end if\n"
            "end program t\n"
        )
        assert err.line > 0
        assert f"line {err.line}:" in str(err)


class TestSemaLines:
    def test_no_program_unit(self):
        # A subroutine-only module analyzes, but has no main program.
        info = analyze(
            parse_source("subroutine s(x)\n  real :: x\nend subroutine\n")
        )
        with pytest.raises(SemanticError) as excinfo:
            info.main()
        assert excinfo.value.line == 1

    def test_undeclared_name_carries_line(self):
        err = sema_error(
            "program t\n"
            "  integer :: i\n"
            "  i = j + 1\n"
            "end program t\n"
        )
        assert err.line == 3
        assert "line 3" in str(err)


class TestWrappedErrors:
    def test_frontend_error_inherits_line(self):
        from repro.reliability.errors import FrontendError
        from repro.session import Session

        bad = (
            "subroutine s(x)\n"
            "  complex :: x\n"
            "end subroutine\n"
        )
        with pytest.raises(FrontendError) as excinfo:
            Session(bad).frontend()
        err = excinfo.value
        assert err.line == 2
        assert "line=2" in str(err)

    def test_unknown_line_stays_sentinel(self):
        from repro.reliability.errors import ReproError

        err = ReproError("boom")
        assert err.line == -1
        assert "line=" not in str(err)

"""FIR -> core lowering ([3]) tests: structure and semantic preservation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_to_core, compile_to_fir
from repro.ir import Interpreter


class TestStructure:
    def test_no_fir_left(self, saxpy_mini_source):
        module = compile_to_core(saxpy_mini_source).module
        leftovers = [
            op.name
            for op in module.walk()
            if op.name.startswith("fir.") and op.name != "fir.print"
        ]
        assert leftovers == []

    def test_do_loop_becomes_exclusive_scf_for(self):
        source = (
            "subroutine s(a)\nreal, intent(out) :: a(4)\ninteger :: i\n"
            "do i = 1, 4\na(i) = 1.0\nend do\nend subroutine\n"
        )
        module = compile_to_core(source).module
        fors = [op for op in module.walk() if op.name == "scf.for"]
        assert len(fors) == 1
        # inclusive ub 4 became ub+1: an addi feeding the loop
        ub_op = fors[0].operands[1].op
        assert ub_op.name == "arith.addi"

    def test_one_based_subi_emitted(self):
        """The paper's Listing 4 idiom: subi for 1-based -> 0-based."""
        source = (
            "subroutine s(a)\nreal, intent(out) :: a(4)\ninteger :: i\n"
            "do i = 1, 4\na(i) = 1.0\nend do\nend subroutine\n"
        )
        module = compile_to_core(source).module
        names = [op.name for op in module.walk()]
        assert "arith.subi" in names
        assert "memref.store" in names

    def test_declare_forwarded(self, saxpy_mini_source):
        module = compile_to_core(saxpy_mini_source).module
        assert not [op for op in module.walk() if op.name == "fir.declare"]

    def test_print_survives(self):
        source = (
            "program t\ninteger :: i\ni = 3\nprint *, 'i =', i\nend program\n"
        )
        module = compile_to_core(source).module
        assert [op for op in module.walk() if op.name == "fir.print"]


class TestSemanticPreservation:
    """FIR-level and core-level interpretation must agree exactly."""

    def _both_levels(self, source, name, make_args):
        fir_args = make_args()
        Interpreter(compile_to_fir(source).module).call(name, *fir_args)
        core_args = make_args()
        Interpreter(compile_to_core(source).module).call(name, *core_args)
        return fir_args, core_args

    def test_saxpy_equivalence(self, saxpy_mini_source):
        def make_args():
            rng = np.random.default_rng(2)
            return (
                np.array(1.5, np.float32),
                rng.standard_normal(20).astype(np.float32),
                rng.standard_normal(20).astype(np.float32),
                np.array(20, np.int32),
            )

        fir_args, core_args = self._both_levels(
            saxpy_mini_source, "saxpy", make_args
        )
        assert fir_args[2].tobytes() == core_args[2].tobytes()

    def test_conditional_equivalence(self):
        source = (
            "subroutine s(a, n)\ninteger, intent(in) :: n\n"
            "real, intent(inout) :: a(n)\ninteger :: i\n"
            "do i = 1, n\n"
            "if (a(i) < 0.0) then\na(i) = -a(i)\nend if\n"
            "end do\nend subroutine\n"
        )

        def make_args():
            rng = np.random.default_rng(5)
            return (
                rng.standard_normal(31).astype(np.float32),
                np.array(31, np.int32),
            )

        fir_args, core_args = self._both_levels(source, "s", make_args)
        assert fir_args[0].tobytes() == core_args[0].tobytes()
        assert np.all(fir_args[0] >= 0)

    @given(n=st.integers(min_value=1, max_value=40), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_prefix_sum_property(self, n, seed):
        """Random sizes: a scan computed at FIR and core levels agrees."""
        source = (
            "subroutine scan(a, n)\ninteger, intent(in) :: n\n"
            "real, intent(inout) :: a(n)\ninteger :: i\n"
            "do i = 2, n\na(i) = a(i) + a(i - 1)\nend do\nend subroutine\n"
        )
        rng = np.random.default_rng(seed)
        base = rng.standard_normal(n).astype(np.float32)
        fir_arr = base.copy()
        core_arr = base.copy()
        Interpreter(compile_to_fir(source).module).call(
            "scan", fir_arr, np.array(n, np.int32)
        )
        Interpreter(compile_to_core(source).module).call(
            "scan", core_arr, np.array(n, np.int32)
        )
        assert fir_arr.tobytes() == core_arr.tobytes()

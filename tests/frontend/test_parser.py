"""Fortran statement/unit parser tests."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import FortranSyntaxError
from repro.frontend.parser import parse_source


def parse_unit(body: str, decls: str = "", kind: str = "program"):
    if kind == "program":
        source = f"program t\n{decls}\n{body}\nend program t\n"
    else:
        source = f"subroutine t()\n{decls}\n{body}\nend subroutine\n"
    return parse_source(source).units[0]


class TestUnits:
    def test_program(self):
        unit = parse_source("program hello\nend program hello\n").units[0]
        assert unit.kind == "program" and unit.name == "hello"

    def test_subroutine_args(self):
        unit = parse_source(
            "subroutine s(a, b, n)\ninteger :: a, b, n\nend subroutine\n"
        ).units[0]
        assert unit.dummy_args == ["a", "b", "n"]

    def test_multiple_units(self):
        source = (
            "subroutine a()\nend subroutine\n"
            "program b\nend program\n"
        )
        units = parse_source(source).units
        assert [u.name for u in units] == ["a", "b"]

    def test_use_and_implicit_none_skipped(self):
        unit = parse_source(
            "program t\nuse iso_fortran_env\nimplicit none\nend program\n"
        ).units[0]
        assert unit.body == []

    def test_empty_source(self):
        with pytest.raises(FortranSyntaxError):
            parse_source("\n")


class TestDeclarations:
    def test_array_and_scalar(self):
        unit = parse_unit("", "real :: a(100), b")
        assert unit.decls[0].name == "a"
        assert isinstance(unit.decls[0].dims[0], ast.IntLit)
        assert unit.decls[1].name == "b" and unit.decls[1].dims == []

    def test_kind(self):
        unit = parse_unit("", "real(8) :: x\ninteger(kind=8) :: n")
        assert unit.decls[0].type.kind == 8
        assert unit.decls[1].type.kind == 8

    def test_double_precision(self):
        unit = parse_unit("", "double precision :: d")
        assert unit.decls[0].type == ast.TypeSpec("real", 8)

    def test_parameter(self):
        unit = parse_unit("", "integer, parameter :: n = 128")
        assert unit.decls[0].is_parameter
        assert unit.decls[0].init.value == 128

    def test_intent(self):
        unit = parse_unit("", "real, intent(inout) :: y(10)")
        assert unit.decls[0].intent == "inout"

    def test_dimension_attribute(self):
        unit = parse_unit("", "real, dimension(4, 5) :: m")
        assert len(unit.decls[0].dims) == 2

    def test_2d_array(self):
        unit = parse_unit("", "real :: a(3, 4)")
        assert len(unit.decls[0].dims) == 2


class TestStatements:
    def test_assignment(self):
        unit = parse_unit("x = 1 + 2 * 3", "integer :: x")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value, ast.BinOp) and stmt.value.op == "+"
        # precedence: 2*3 grouped under +
        assert stmt.value.rhs.op == "*"

    def test_power_right_assoc(self):
        unit = parse_unit("x = 2 ** 3 ** 2", "integer :: x")
        power = unit.body[0].value
        assert power.op == "**"
        assert power.rhs.op == "**"

    def test_array_assignment(self):
        unit = parse_unit("a(i) = 0.0", "real :: a(5)\ninteger :: i")
        target = unit.body[0].target
        assert isinstance(target, ast.ArrayRef) and target.name == "a"

    def test_do_loop(self):
        unit = parse_unit(
            "do i = 1, 10, 2\nx = i\nend do", "integer :: i, x"
        )
        loop = unit.body[0]
        assert isinstance(loop, ast.DoLoop)
        assert loop.var == "i" and loop.step.value == 2
        assert len(loop.body) == 1

    def test_if_elseif_else(self):
        body = (
            "if (x > 0) then\ny = 1\nelse if (x < 0) then\ny = 2\n"
            "else\ny = 3\nend if"
        )
        unit = parse_unit(body, "integer :: x, y")
        block = unit.body[0]
        assert isinstance(block, ast.IfBlock)
        assert len(block.conditions) == 2
        assert len(block.bodies) == 2
        assert len(block.else_body) == 1

    def test_one_line_if(self):
        unit = parse_unit("if (x > 0) y = 1", "integer :: x, y")
        block = unit.body[0]
        assert isinstance(block, ast.IfBlock)
        assert block.bodies[0] and not block.else_body

    def test_call(self):
        unit = parse_unit("call foo(x, 2)", "integer :: x")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.name == "foo" and len(stmt.args) == 2

    def test_print(self):
        unit = parse_unit("print *, 'x is', x", "integer :: x")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.PrintStmt)
        assert isinstance(stmt.items[0], ast.StringLit)

    def test_unary_minus(self):
        unit = parse_unit("x = -y", "integer :: x, y")
        assert isinstance(unit.body[0].value, ast.UnOp)

    def test_logical_expression(self):
        unit = parse_unit(
            "if (a > 0 .and. b < 1) x = 1",
            "integer :: a, b, x",
        )
        cond = unit.body[0].conditions[0]
        assert cond.op == ".and."


class TestOmpStructured:
    def test_target_data_nests_body(self):
        body = (
            "!$omp target data map(from: a)\n"
            "a(1) = 0.0\n"
            "!$omp end target data"
        )
        unit = parse_unit(body, "real :: a(4)")
        region = unit.body[0]
        assert isinstance(region, ast.OmpTargetData)
        assert len(region.body) == 1

    def test_target_parallel_do_owns_loop(self):
        body = (
            "!$omp target parallel do\n"
            "do i = 1, 4\na(i) = 0.0\nend do\n"
            "!$omp end target parallel do"
        )
        unit = parse_unit(body, "real :: a(4)\ninteger :: i")
        target = unit.body[0]
        assert isinstance(target, ast.OmpTarget)
        assert target.parallel_do and target.is_target
        assert isinstance(target.body[0], ast.DoLoop)

    def test_end_directive_optional_for_combined(self):
        body = "!$omp target parallel do\ndo i = 1, 4\na(i) = 0.0\nend do"
        unit = parse_unit(body, "real :: a(4)\ninteger :: i")
        assert isinstance(unit.body[0], ast.OmpTarget)

    def test_missing_end_target_data(self):
        body = "!$omp target data map(to: a)\na(1) = 0.0"
        with pytest.raises(FortranSyntaxError, match="end target data"):
            parse_unit(body, "real :: a(4)")

    def test_host_parallel_do_flag(self):
        body = (
            "!$omp parallel do\ndo i = 1, 4\na(i) = 0.0\nend do\n"
            "!$omp end parallel do"
        )
        unit = parse_unit(body, "real :: a(4)\ninteger :: i")
        assert not unit.body[0].is_target

    def test_nested_listing1_shape(self):
        """The paper's Listing 1: target inside target data."""
        body = (
            "!$omp target data map(from: a)\n"
            "!$omp target map(to: b)\n"
            "do i = 1, 4\na(i) = b(i)\nend do\n"
            "!$omp end target\n"
            "!$omp end target data"
        )
        unit = parse_unit(body, "real :: a(4), b(4)\ninteger :: i")
        outer = unit.body[0]
        assert isinstance(outer, ast.OmpTargetData)
        inner = outer.body[0]
        assert isinstance(inner, ast.OmpTarget) and not inner.parallel_do

"""AST -> FIR lowering tests (executed through the interpreter)."""

import numpy as np
import pytest

from repro.frontend import compile_to_fir
from repro.frontend.lowering import LoweringError
from repro.ir import Interpreter, verify


def run_program(source: str, name: str = "t", *args):
    result = compile_to_fir(source)
    verify(result.module)
    interp = Interpreter(result.module)
    interp.call(name, *args)
    return result


def program(body: str, decls: str = "") -> str:
    return f"program t\n{decls}\n{body}\nend program\n"


class TestScalarsAndArithmetic:
    def test_scalar_roundtrip(self):
        source = (
            "subroutine s(out)\nreal, intent(out) :: out\n"
            "out = 1.5 + 2.0 * 3.0\nend subroutine\n"
        )
        result = compile_to_fir(source)
        out = np.zeros((), np.float32)
        Interpreter(result.module).call("s", out)
        assert out[()] == pytest.approx(7.5)

    def test_integer_division(self):
        source = (
            "subroutine s(out)\ninteger, intent(out) :: out\n"
            "out = 7 / 2\nend subroutine\n"
        )
        out = np.zeros((), np.int32)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == 3

    def test_mixed_promotion(self):
        source = (
            "subroutine s(out)\nreal, intent(out) :: out\n"
            "integer :: i\ni = 3\nout = i / 2.0\nend subroutine\n"
        )
        out = np.zeros((), np.float32)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == pytest.approx(1.5)

    def test_double_precision(self):
        source = (
            "subroutine s(out)\ndouble precision, intent(out) :: out\n"
            "out = 1d0 / 3d0\nend subroutine\n"
        )
        out = np.zeros((), np.float64)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == pytest.approx(1.0 / 3.0, abs=1e-12)

    def test_power(self):
        source = (
            "subroutine s(out)\nreal, intent(out) :: out\n"
            "real :: x\nx = 3.0\nout = x ** 2\nend subroutine\n"
        )
        out = np.zeros((), np.float32)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == pytest.approx(9.0)

    def test_parameter_materialized(self):
        source = (
            "subroutine s(out)\nreal, intent(out) :: out\n"
            "real, parameter :: pi = 3.25\nout = pi\nend subroutine\n"
        )
        out = np.zeros((), np.float32)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == pytest.approx(3.25)


class TestControlFlow:
    def test_do_loop_writes_array(self):
        source = (
            "subroutine s(a, n)\ninteger, intent(in) :: n\n"
            "real, intent(out) :: a(n)\ninteger :: i\n"
            "do i = 1, n\na(i) = real(i) * 2.0\nend do\nend subroutine\n"
        )
        a = np.zeros(5, np.float32)
        Interpreter(compile_to_fir(source).module).call(
            "s", a, np.array(5, np.int32)
        )
        assert np.allclose(a, 2.0 * np.arange(1, 6))

    def test_nested_loops_2d(self):
        source = (
            "subroutine s(m, n)\ninteger, intent(in) :: n\n"
            "real, intent(out) :: m(n, n)\ninteger :: i, j\n"
            "do i = 1, n\ndo j = 1, n\nm(i, j) = real(i * 10 + j)\n"
            "end do\nend do\nend subroutine\n"
        )
        m = np.zeros((3, 3), np.float32)
        Interpreter(compile_to_fir(source).module).call(
            "s", m, np.array(3, np.int32)
        )
        assert m[1, 2] == pytest.approx(23.0)  # i=2, j=3

    def test_if_chain(self):
        source = (
            "subroutine s(x, out)\ninteger, intent(in) :: x\n"
            "integer, intent(out) :: out\n"
            "if (x > 0) then\nout = 1\nelse if (x < 0) then\nout = -1\n"
            "else\nout = 0\nend if\nend subroutine\n"
        )
        module = compile_to_fir(source).module
        for value, expected in ((5, 1), (-2, -1), (0, 0)):
            out = np.zeros((), np.int32)
            Interpreter(module).call("s", np.array(value, np.int32), out)
            assert out[()] == expected

    def test_call_by_reference(self):
        source = (
            "subroutine inc(x)\nreal, intent(inout) :: x\nx = x + 1.0\n"
            "end subroutine\n"
            "subroutine s(out)\nreal, intent(out) :: out\n"
            "out = 5.0\ncall inc(out)\ncall inc(out)\nend subroutine\n"
        )
        out = np.zeros((), np.float32)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == pytest.approx(7.0)

    def test_array_argument_cast(self):
        """Static actual array -> dynamic dummy inserts a memref.cast."""
        source = (
            "subroutine fill(a, n)\ninteger, intent(in) :: n\n"
            "real, intent(out) :: a(n)\ninteger :: i\n"
            "do i = 1, n\na(i) = 1.0\nend do\nend subroutine\n"
            "program t\nreal :: v(6)\ninteger :: i\ncall fill(v, 6)\n"
            "end program\n"
        )
        result = compile_to_fir(source)
        names = [op.name for op in result.module.walk()]
        assert "memref.cast" in names
        Interpreter(result.module).call("t")


class TestIntrinsics:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("mod(7, 3)", 1),
            ("min(4, 2)", 2),
            ("max(4, 2)", 4),
            ("abs(-3)", 3),
        ],
    )
    def test_integer_intrinsics(self, expr, expected):
        source = (
            f"subroutine s(out)\ninteger, intent(out) :: out\n"
            f"out = {expr}\nend subroutine\n"
        )
        out = np.zeros((), np.int32)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == expected

    def test_sqrt(self):
        source = (
            "subroutine s(out)\nreal, intent(out) :: out\n"
            "out = sqrt(16.0)\nend subroutine\n"
        )
        out = np.zeros((), np.float32)
        Interpreter(compile_to_fir(source).module).call("s", out)
        assert out[()] == pytest.approx(4.0)

    def test_size(self):
        source = (
            "subroutine s(a, n, out)\ninteger, intent(in) :: n\n"
            "real, intent(in) :: a(n)\ninteger, intent(out) :: out\n"
            "out = size(a)\nend subroutine\n"
        )
        out = np.zeros((), np.int32)
        Interpreter(compile_to_fir(source).module).call(
            "s", np.zeros(9, np.float32), np.array(9, np.int32), out
        )
        assert out[()] == 9


class TestOmpLowering:
    def test_implicit_maps_classified(self, saxpy_mini_source):
        from repro.dialects.omp import MapInfoOp

        result = compile_to_fir(saxpy_mini_source)
        infos = {
            op.var_name: op.map_type
            for op in result.module.walk()
            if isinstance(op, MapInfoOp)
        }
        assert infos["x"] == "tofrom,implicit"
        assert infos["y"] == "tofrom,implicit"
        assert infos["a"] == "to,implicit"
        assert infos["n"] == "to,implicit"
        assert "i" not in infos  # loop variable is private

    def test_explicit_map_respected(self):
        from repro.dialects.omp import MapInfoOp

        source = (
            "subroutine s(a, n)\ninteger, intent(in) :: n\n"
            "real, intent(out) :: a(n)\ninteger :: i\n"
            "!$omp target parallel do map(from: a)\n"
            "do i = 1, n\na(i) = 1.0\nend do\n"
            "!$omp end target parallel do\nend subroutine\n"
        )
        result = compile_to_fir(source)
        infos = {
            op.var_name: op.map_type
            for op in result.module.walk()
            if isinstance(op, MapInfoOp)
        }
        assert infos["a"] == "from"

    def test_written_scalar_is_private(self):
        """A scalar assigned inside the region becomes a region alloca."""
        from repro.dialects.omp import MapInfoOp, TargetOp

        source = (
            "subroutine s(a, n)\ninteger, intent(in) :: n\n"
            "real, intent(out) :: a(n)\ninteger :: i\nreal :: tmp\n"
            "!$omp target parallel do\n"
            "do i = 1, n\ntmp = real(i)\na(i) = tmp\nend do\n"
            "!$omp end target parallel do\nend subroutine\n"
        )
        result = compile_to_fir(source)
        infos = [
            op.var_name
            for op in result.module.walk()
            if isinstance(op, MapInfoOp)
        ]
        assert "tmp" not in infos
        target = next(
            op for op in result.module.walk() if isinstance(op, TargetOp)
        )
        allocas = [
            op for op in target.walk() if op.name == "fir.alloca"
        ]
        assert allocas, "private scalar must be allocated inside the region"

    def test_reduction_recorded_on_wsloop(self):
        from repro.dialects.omp import WsLoopOp

        source = (
            "subroutine s(x, s0, n)\ninteger, intent(in) :: n\n"
            "real, intent(in) :: x(n)\nreal, intent(out) :: s0\n"
            "integer :: i\ns0 = 0.0\n"
            "!$omp target parallel do reduction(+: s0)\n"
            "do i = 1, n\ns0 = s0 + x(i)\nend do\n"
            "!$omp end target parallel do\nend subroutine\n"
        )
        result = compile_to_fir(source)
        wsloop = next(
            op for op in result.module.walk() if isinstance(op, WsLoopOp)
        )
        assert wsloop.reduction_kinds == ["add"]
        assert len(wsloop.reduction_vars) == 1

    def test_exit_unsupported(self):
        source = program(
            "do i = 1, 4\nexit\nend do", "integer :: i"
        )
        with pytest.raises(LoweringError):
            compile_to_fir(source)

"""OpenMP directive parsing tests."""

import pytest

from repro.frontend.directives import parse_directive
from repro.frontend.lexer import FortranSyntaxError


class TestConstructs:
    def test_bare_target(self):
        d = parse_directive("target")
        assert d.construct == "target" and not d.is_end
        assert not d.parallel_do and not d.simd

    def test_target_parallel_do(self):
        d = parse_directive("target parallel do")
        assert d.construct == "target" and d.parallel_do and not d.simd

    def test_target_parallel_do_simd(self):
        d = parse_directive("target parallel do simd simdlen(10)")
        assert d.parallel_do and d.simd
        assert d.clauses.simdlen == 10

    def test_end_forms(self):
        d = parse_directive("end target parallel do simd")
        assert d.is_end and d.construct == "target" and d.simd

    def test_target_data(self):
        d = parse_directive("target data map(from: a)")
        assert d.construct == "target data"
        assert d.clauses.maps[0].map_type == "from"
        assert d.clauses.maps[0].vars == ["a"]

    def test_enter_exit_data(self):
        assert parse_directive("target enter data map(to: x)").construct == \
            "target enter data"
        assert parse_directive("target exit data map(from: x)").construct == \
            "target exit data"

    def test_target_update(self):
        d = parse_directive("target update from(a) to(b, c)")
        assert d.construct == "target update"
        assert d.from_vars == ["a"]
        assert d.to_vars == ["b", "c"]

    def test_host_parallel_do(self):
        d = parse_directive("parallel do")
        assert d.construct == "parallel do"

    def test_unknown_construct(self):
        with pytest.raises(FortranSyntaxError):
            parse_directive("sections")

    def test_bare_end(self):
        with pytest.raises(FortranSyntaxError):
            parse_directive("end")


class TestClauses:
    def test_map_multiple_vars(self):
        d = parse_directive("target map(tofrom: a, b) map(to: c)")
        assert len(d.clauses.maps) == 2
        assert d.clauses.maps[0].vars == ["a", "b"]
        assert d.clauses.maps[1].map_type == "to"

    def test_map_default_tofrom(self):
        d = parse_directive("target map(a)")
        assert d.clauses.maps[0].map_type == "tofrom"

    def test_map_with_section_strips_bounds(self):
        d = parse_directive("target map(to: a(1:n))")
        assert d.clauses.maps[0].vars == ["a"]

    def test_bad_map_type(self):
        with pytest.raises(FortranSyntaxError, match="bad map type"):
            parse_directive("target map(upward: a)")

    def test_reduction(self):
        d = parse_directive("target parallel do reduction(+:s)")
        assert d.clauses.reductions[0].operator == "+"
        assert d.clauses.reductions[0].vars == ["s"]

    @pytest.mark.parametrize("op", ["+", "*", "max", "min"])
    def test_reduction_operators(self, op):
        d = parse_directive(f"target parallel do reduction({op}: s)")
        assert d.clauses.reductions[0].operator == op

    def test_unsupported_reduction_op(self):
        with pytest.raises(FortranSyntaxError):
            parse_directive("target parallel do reduction(.and.: s)")

    def test_simdlen_requires_int(self):
        with pytest.raises(FortranSyntaxError):
            parse_directive("target parallel do simd simdlen(x)")

    def test_device_clause(self):
        d = parse_directive("target device(2)")
        assert d.clauses.device == 2

    def test_ignored_clauses_accepted(self):
        d = parse_directive("target parallel do private(t) schedule(static)")
        assert d.parallel_do  # no exception

    def test_unknown_clause_rejected(self):
        with pytest.raises(FortranSyntaxError, match="unsupported OpenMP clause"):
            parse_directive("target allocate(a)")

"""Fortran lexer tests."""

import pytest

from repro.frontend.lexer import FortranSyntaxError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != TokenKind.NEWLINE][:-1]


def texts(source):
    return [
        t.text
        for t in tokenize(source)
        if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)
    ]


class TestBasics:
    def test_case_normalization(self):
        assert texts("REAL :: X") == ["real", "::", "x"]

    def test_integer_vs_real(self):
        tokens = tokenize("x = 1 + 2.5")
        kinds_ = [t.kind for t in tokens]
        assert TokenKind.INT in kinds_
        assert TokenKind.REAL in kinds_

    def test_d_exponent(self):
        tokens = [t for t in tokenize("x = 1d0") if t.kind == TokenKind.REAL]
        assert tokens[0].text == "1d0"

    def test_scientific(self):
        tokens = [t for t in tokenize("x = 1.5e-3") if t.kind == TokenKind.REAL]
        assert tokens[0].text == "1.5e-3"

    def test_operators(self):
        assert texts("a ** b == c /= d") == ["a", "**", "b", "==", "c", "/=", "d"]

    def test_double_colon(self):
        assert "::" in texts("integer :: i")

    def test_logical_ops(self):
        result = texts("a .and. b .or. .not. c")
        assert ".and." in result and ".or." in result and ".not." in result

    def test_old_style_comparisons(self):
        assert ".lt." in texts("if (a .lt. b) then")

    def test_string_literal(self):
        tokens = [t for t in tokenize("print *, 'hello'") if t.kind == TokenKind.STRING]
        assert tokens[0].text == "'hello'"

    def test_comment_dropped(self):
        assert texts("x = 1 ! a comment") == ["x", "=", "1"]

    def test_bad_character(self):
        with pytest.raises(FortranSyntaxError):
            tokenize("x = `")


class TestOmpSentinels:
    def test_directive_token(self):
        tokens = tokenize("!$omp target parallel do\n")
        assert tokens[0].kind == TokenKind.OMP_DIRECTIVE
        assert tokens[0].text == "target parallel do"

    def test_case_insensitive_sentinel(self):
        tokens = tokenize("!$OMP TARGET\n")
        assert tokens[0].kind == TokenKind.OMP_DIRECTIVE

    def test_regular_comment_not_directive(self):
        tokens = tokenize("! just a comment\n")
        assert all(t.kind != TokenKind.OMP_DIRECTIVE for t in tokens)


class TestContinuations:
    def test_ampersand_splices(self):
        source = "x = 1 + &\n    2\n"
        assert texts(source) == ["x", "=", "1", "+", "2"]

    def test_line_numbers_survive(self):
        tokens = tokenize("a = 1\nb = 2\n")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2

"""Simulated OpenCL + device data table tests."""

import numpy as np
import pytest

from repro.runtime.device_runtime import DeviceDataTable, DeviceRuntimeError
from repro.runtime.opencl import ClCommandQueue, ClContext, ClError, ClProgram


class TestContext:
    def test_create_and_get(self):
        ctx = ClContext()
        buf = ctx.create_buffer("a", (16,), np.float32, 1)
        assert buf.memory_space == 1
        assert ctx.get_buffer("a") is buf

    def test_missing_buffer(self):
        with pytest.raises(ClError, match="CL_INVALID_MEM_OBJECT"):
            ClContext().get_buffer("ghost")

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            ClContext().create_buffer("a", (4,), np.float32, 99)

    def test_oversized_allocation(self):
        ctx = ClContext()
        with pytest.raises(ClError, match="ALLOCATION_FAILURE"):
            # one HBM bank is 256 MiB
            ctx.create_buffer("big", (300 * 2**20,), np.float32, 1)


class TestQueue:
    def test_write_read_roundtrip(self):
        ctx = ClContext()
        queue = ClCommandQueue(ctx.board)
        buf = ctx.create_buffer("a", (8,), np.float32, 1)
        host = np.arange(8, dtype=np.float32)
        queue.enqueue_write(buf, host)
        out = np.zeros(8, dtype=np.float32)
        queue.enqueue_read(buf, out)
        assert np.allclose(out, host)
        stats = queue.stats
        assert stats["transfers"] == 2
        assert stats["bytes_h2d"] == stats["bytes_d2h"] == 32

    def test_clock_advances(self):
        ctx = ClContext()
        queue = ClCommandQueue(ctx.board)
        buf = ctx.create_buffer("a", (1024,), np.float32, 1)
        t0 = queue.now_s
        queue.enqueue_write(buf, np.zeros(1024, np.float32))
        assert queue.now_s > t0
        assert queue.finish() == queue.now_s

    def test_shape_mismatch(self):
        ctx = ClContext()
        queue = ClCommandQueue(ctx.board)
        buf = ctx.create_buffer("a", (8,), np.float32, 1)
        with pytest.raises(ClError, match="BUFFER_SIZE"):
            queue.enqueue_write(buf, np.zeros(4, np.float32))

    def test_kernel_task(self):
        ctx = ClContext()
        queue = ClCommandQueue(ctx.board)
        calls = []

        def fake_kernel(*args):
            calls.append(args)
            return 1e-3  # one millisecond of kernel time

        program = ClProgram({"k": fake_kernel})
        kernel = program.create_kernel("k")
        kernel.set_arg(0, 42)
        queue.enqueue_task(program, kernel)
        assert calls == [(42,)]
        assert queue.now_s >= 1e-3
        assert queue.stats["launches"] == 1

    def test_unknown_kernel(self):
        with pytest.raises(ClError, match="INVALID_KERNEL_NAME"):
            ClProgram({}).create_kernel("nope")


class TestDataTable:
    def _table(self):
        return DeviceDataTable(ClContext())

    def test_counter_protocol(self):
        table = self._table()
        assert not table.check_exists("a")
        assert table.acquire("a") == 1
        assert table.check_exists("a")
        assert table.acquire("a") == 2
        assert table.release("a") == 1
        assert table.check_exists("a")
        assert table.release("a") == 0
        assert not table.check_exists("a")

    def test_release_without_acquire(self):
        with pytest.raises(DeviceRuntimeError, match="without matching"):
            self._table().release("a")

    def test_alloc_reuses_matching_buffer(self):
        table = self._table()
        first = table.alloc("a", (8,), np.float32, 1)
        first.data[:] = 7.0
        again = table.alloc("a", (8,), np.float32, 1)
        assert again is first  # resident data survives re-entry
        assert np.all(again.data == 7.0)

    def test_alloc_replaces_on_shape_change(self):
        table = self._table()
        first = table.alloc("a", (8,), np.float32, 1)
        second = table.alloc("a", (16,), np.float32, 1)
        assert second is not first
        assert second.data.shape == (16,)

    def test_lookup_space_checked(self):
        table = self._table()
        table.alloc("a", (8,), np.float32, 1)
        assert table.lookup("a", 1).data.shape == (8,)
        with pytest.raises(DeviceRuntimeError, match="space"):
            table.lookup("a", 2)


class TestCounterProperty:
    """Property: after any acquire/release trace, check_exists is
    (acquires - releases) > 0 — the paper's counter semantics."""

    def test_random_traces(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.lists(st.sampled_from(["acq", "rel"]), max_size=60))
        @settings(max_examples=80, deadline=None)
        def run(trace):
            table = DeviceDataTable(ClContext())
            counter = 0
            for action in trace:
                if action == "acq":
                    table.acquire("x")
                    counter += 1
                else:
                    if counter == 0:
                        with pytest.raises(DeviceRuntimeError):
                            table.release("x")
                    else:
                        table.release("x")
                        counter -= 1
                assert table.check_exists("x") == (counter > 0)

        run()

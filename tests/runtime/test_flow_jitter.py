"""``_flow_jitter`` stability pinning (the bench gate depends on it).

The jitter factor models the paper's run-to-run measurement noise, but
it must be a *pure function* of modelled values — the CI bench gate
(``perf_smoke.py --check-against``) compares ``device_time_ms`` exactly,
and the chaos conformance contract requires retried/degraded runs to
reproduce it bit-for-bit.  These tests pin the exact digest-derived
values so any accidental dependence on ambient state (RNG, wall clock,
process identity) fails loudly instead of drifting the bench.
"""

import hashlib

from repro.runtime.executor import _flow_jitter


class TestDeterminism:
    def test_same_key_same_jitter(self):
        keys = [f"fortran-openmp:saxpy:{t:.9f}" for t in (0.0, 0.1, 2.5)]
        for key in keys:
            assert _flow_jitter(key) == _flow_jitter(key)

    def test_pure_function_of_sha256(self):
        """Pin the derivation itself: first 8 digest bytes -> unit ->
        1 + (2*unit - 1) * 0.004."""
        key = "fortran-openmp:saxpy:0.000018752"
        digest = hashlib.sha256(key.encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        assert _flow_jitter(key) == 1.0 + (2.0 * unit - 1.0) * 0.004

    def test_pinned_exact_values(self):
        """Golden values: a change here means every BENCH_*.json baseline
        in benchmarks/ is invalidated — regenerate them deliberately,
        never rebase the expectation silently."""
        assert _flow_jitter("a") == 1.0023309941641791
        assert _flow_jitter("fortran-openmp:main:0.001234567") == (
            _flow_jitter("fortran-openmp:main:0.001234567")
        )

    def test_bound_holds_over_many_keys(self):
        for i in range(2048):
            jitter = _flow_jitter(f"flow:{i}")
            assert abs(jitter - 1.0) <= 0.004

    def test_distinct_keys_spread(self):
        values = {_flow_jitter(f"flow:{i}") for i in range(64)}
        assert len(values) > 32  # not collapsed to a constant

"""The ``--check-against`` bench gate must *report* what it cannot
compare.

PR 7 bugfix: the gate used to iterate the intersection of baseline and
current entries, so a bench or ``*_tiers`` entry that vanished from the
current run (a retired workload, a tier bench silently dropped by a
refactor) simply un-gated its own regression.  Missing entries are now
first-class reported failures — never a silent pass, never a traceback.
"""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "perf_smoke", REPO / "benchmarks" / "perf_smoke.py"
)
perf_smoke = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_smoke)

check_against = perf_smoke.check_against


def _payload(benches=(), **tier_sections):
    payload = {"benches": list(benches)}
    for key, entries in tier_sections.items():
        payload[key] = list(entries)
    return payload


BENCH = {
    "name": "spmv:n=1024",
    "seconds": 0.5,
    "interpreter_steps": 1000,
    "device_time_ms": 1.25,
    "kernel_cycles": 250000.0,
}
TIER = {
    "name": "spmv:n=4096",
    "scalar_seconds": 30.0,
    "vectorized_seconds": 0.05,
    "speedup": 600.0,
    "floor": 5.0,
    "interpreter_steps": 1000,
}


class TestMissingEntries:
    def test_identical_payloads_pass(self):
        base = _payload([BENCH], segmented_tiers=[TIER])
        cur = _payload([BENCH], segmented_tiers=[TIER])
        assert check_against(base, cur) == []

    def test_missing_bench_is_a_reported_failure(self):
        base = _payload([BENCH])
        cur = _payload([])
        failures = check_against(base, cur)
        assert len(failures) == 1
        assert "spmv:n=1024" in failures[0]
        assert "missing from current run" in failures[0]

    def test_missing_tier_entry_is_a_reported_failure(self):
        """The exact regression shape: a baseline that records a speedup
        floor for a tier bench the current run no longer produces."""
        base = _payload([], segmented_tiers=[TIER])
        cur = _payload([])
        failures = check_against(base, cur)
        assert len(failures) == 1
        assert "segmented_tiers:spmv:n=4096" in failures[0]
        assert "missing from current run" in failures[0]

    def test_missing_tier_section_reports_every_entry(self):
        other = dict(TIER, name="sgesl:n=512")
        base = _payload([], segmented_tiers=[TIER, other])
        cur = _payload([], nest_tiers=[dict(TIER, name="heat3d:n=64")])
        failures = check_against(base, cur)
        assert len(failures) == 2
        assert all("missing from current run" in f for f in failures)

    def test_current_only_entries_never_fail(self):
        base = _payload([])
        cur = _payload([BENCH], segmented_tiers=[TIER])
        assert check_against(base, cur) == []


class TestDriftAndFloor:
    def test_modelled_drift_fails(self):
        base = _payload([BENCH])
        cur = _payload([dict(BENCH, kernel_cycles=999.0)])
        failures = check_against(base, cur)
        assert len(failures) == 1
        assert "kernel_cycles" in failures[0]

    def test_wall_clock_never_gates(self):
        base = _payload([BENCH])
        cur = _payload([dict(BENCH, seconds=50.0)])
        assert check_against(base, cur) == []

    def test_speedup_below_floor_fails(self):
        base = _payload([], segmented_tiers=[TIER])
        cur = _payload([], segmented_tiers=[dict(TIER, speedup=3.2)])
        failures = check_against(base, cur)
        assert len(failures) == 1
        assert "below the recorded floor" in failures[0]

    def test_scaling_tier_floor_gates_like_any_tier(self):
        """The PR 10 scaling_tiers section rides the same floor check:
        a collapsed multi-CU speedup is a reported failure."""
        entry = {
            "name": "strong:saxpy:n=1000000:cu=2",
            "device_time_ms": 56.05,
            "kernel_cycles": 1.6e6,
            "speedup": 1.953,
            "floor": 1.6,
        }
        base = _payload([], scaling_tiers=[entry])
        assert check_against(base, _payload([], scaling_tiers=[entry])) == []
        failures = check_against(
            base, _payload([], scaling_tiers=[dict(entry, speedup=1.02)])
        )
        assert len(failures) == 1
        assert "scaling_tiers:strong:saxpy:n=1000000:cu=2" in failures[0]


class TestBaselineName:
    def test_every_failure_line_names_the_baseline_file(self):
        """PR 10 bugfix: a CI log line must be attributable to the exact
        baseline file that gated it."""
        base = _payload(
            [BENCH, dict(BENCH, name="gone:n=1")],
            segmented_tiers=[TIER],
        )
        cur = _payload(
            [dict(BENCH, kernel_cycles=999.0)],
            segmented_tiers=[dict(TIER, speedup=3.2)],
        )
        failures = check_against(base, cur, baseline_name="BENCH_pr10.json")
        assert len(failures) == 3
        assert all("BENCH_pr10.json" in line for line in failures)

    def test_positional_call_still_works(self):
        base = _payload([BENCH])
        cur = _payload([dict(BENCH, kernel_cycles=999.0)])
        failures = check_against(base, cur)
        assert len(failures) == 1
        assert "baseline" in failures[0]

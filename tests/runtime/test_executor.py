"""Executor tests: timing accounting + functional behaviour."""

import numpy as np
import pytest

from repro.pipeline import compile_fortran
from repro.runtime.cpu import CpuExecutor
from repro.frontend import compile_to_core
from tests.conftest import SAXPY_MINI, run_offload_saxpy


@pytest.fixture(scope="module")
def saxpy_program():
    return compile_fortran(SAXPY_MINI)


class TestFunctional:
    def test_offload_correct(self, saxpy_program):
        y, expected, result = run_offload_saxpy(saxpy_program, n=128)
        assert np.allclose(y, expected, rtol=1e-6)

    def test_result_fields(self, saxpy_program):
        _, _, result = run_offload_saxpy(saxpy_program, n=128)
        assert result.launches == 1
        # a, n scalars in; x, y in; x, y out
        assert result.transfers == 6
        assert result.bytes_h2d == 4 + 4 + 128 * 4 * 2
        assert result.bytes_d2h == 128 * 4 * 2
        assert result.kernel_cycles > 0
        assert result.device_time_s == pytest.approx(
            result.device_time_ms / 1e3
        )

    def test_time_decomposition(self, saxpy_program):
        _, _, result = run_offload_saxpy(saxpy_program, n=4096)
        assert result.kernel_time_s > 0
        assert result.transfer_time_s > 0
        # jitter is sub-percent: components approximately add up
        assert result.device_time_s == pytest.approx(
            result.kernel_time_s
            + result.transfer_time_s
            + result.launches * saxpy_program.board.kernel_launch_overhead_s,
            rel=0.02,
        )

    def test_kernel_time_scales_linearly(self, saxpy_program):
        _, _, small = run_offload_saxpy(saxpy_program, n=1024)
        _, _, big = run_offload_saxpy(saxpy_program, n=4096)
        ratio = big.kernel_time_s / small.kernel_time_s
        assert 3.0 < ratio < 5.0

    def test_fresh_executor_per_run(self, saxpy_program):
        """Each executor has independent device state: same result twice."""
        _, _, first = run_offload_saxpy(saxpy_program, n=256)
        _, _, second = run_offload_saxpy(saxpy_program, n=256)
        assert first.device_time_s == second.device_time_s

    def test_jitter_deterministic_but_flow_dependent(self, saxpy_program):
        a = saxpy_program.executor("fortran-openmp")
        b = saxpy_program.executor("other-flow")
        rng = np.random.default_rng(0)
        x = rng.standard_normal(64).astype(np.float32)
        y0 = rng.standard_normal(64).astype(np.float32)
        ra = a.run("saxpy", np.array(1.0, np.float32), x, y0.copy(),
                   np.array(64, np.int32))
        rb = b.run("saxpy", np.array(1.0, np.float32), x, y0.copy(),
                   np.array(64, np.int32))
        assert ra.device_time_s != rb.device_time_s
        assert abs(ra.device_time_s / rb.device_time_s - 1) < 0.01


class TestErrors:
    def test_unextracted_kernel_rejected(self):
        from repro.frontend import compile_to_core
        from repro.ir import PassManager
        from repro.backend.vitis import VitisCompiler
        from repro.dialects import builtin
        from repro.ir.attributes import StringAttr
        from repro.runtime.executor import FpgaExecutor
        from repro.transforms import (
            LowerOmpMappedDataPass,
            LowerOmpTargetRegionPass,
        )

        module = compile_to_core(SAXPY_MINI).module
        pm = PassManager()
        pm.add(LowerOmpMappedDataPass(), LowerOmpTargetRegionPass())
        pm.run(module)
        empty_device = builtin.ModuleOp(
            attributes={"target": StringAttr("fpga")}
        )
        bitstream = VitisCompiler().compile(empty_device)
        executor = FpgaExecutor(module, bitstream)
        from repro.ir import IRError

        with pytest.raises(IRError, match="extract-device-module"):
            executor.run(
                "saxpy",
                np.array(1.0, np.float32),
                np.zeros(8, np.float32),
                np.zeros(8, np.float32),
                np.array(8, np.int32),
            )


class TestCpuExecutor:
    def test_functional_and_modelled_time(self):
        module = compile_to_core(SAXPY_MINI).module
        executor = CpuExecutor(module)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(500).astype(np.float32)
        y = rng.standard_normal(500).astype(np.float32)
        expected = (y + np.float32(2.0) * x).astype(np.float32)
        result = executor.run(
            "saxpy", np.array(2.0, np.float32), x, y, np.array(500, np.int32)
        )
        assert np.allclose(y, expected, rtol=1e-6)
        assert result.interpreter_steps > 500
        assert result.time_s == pytest.approx(
            result.interpreter_steps * CpuExecutor.seconds_per_step
        )
        assert 48 < result.power_w < 60

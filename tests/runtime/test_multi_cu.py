"""Multi-compute-unit sharding & double-buffered streaming conformance.

The multi-CU contract (ROADMAP open item 5, PR 10):

* **functional invariance** — outputs are bit-identical at every CU
  count and on every engine tier (the functional walk stays the serial
  iteration order; only the cycle model shards), including the f32
  reduction workloads where a reordered recombination would drift;
* **honest pricing** — modelled ``device_time_ms`` falls as CUs are
  added (sharded outermost loops), per-CU cycles are exposed, and the
  1-CU build is byte-identical to a build with no overrides at all;
* **typed rejection** — an over-budget ``compute_units`` raises
  :class:`DeviceBuildError` at build time, never a clamped build;
* **streaming** — ``stream_tile_bytes`` re-times (never re-orders) DMA:
  a tile >= the array is exactly the non-streamed model, a smaller tile
  splits each transfer into ``ceil(nbytes/tile)`` tile transfers whose
  cost overlaps the adjacent kernel window, and datasets larger than a
  device memory space only allocate when streaming is armed;
* **fault isolation** — injected DMA/kernel faults under multi-CU
  either recover with bit-identical accounting or raise the site's
  typed error; they never corrupt outputs.

The CI ``scaling`` matrix job runs one leg per CU count by exporting
``REPRO_CU=<n>`` (comma lists work too); without it the sweep covers
1, 2 and 4 CUs.
"""

import os

import numpy as np
import pytest

from repro.fpga.board import U280Board
from repro.reliability.errors import (
    DeviceAllocationError,
    DeviceBuildError,
    DmaError,
)
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.session import KernelOverrides, Session, TargetConfig
from repro.workloads import get_workload

#: (compiled, vectorize) — scalar ground truth first.
TIERS = ((False, False), (False, True), (True, False), (True, True))


def _cu_counts() -> tuple[int, ...]:
    env = os.environ.get("REPRO_CU", "").strip()
    if env:
        return tuple(int(token) for token in env.split(","))
    return (1, 2, 4)


CU_COUNTS = _cu_counts()

#: loop-shape coverage: 1-D streaming, f32 reduction (recombination
#: order), 2-D and rank-3 nests, and sgesl's triangular trip counts
#: (the remainder-heavy shard case).
WORKLOADS = ("saxpy", "dot", "jacobi2d", "heat3d", "sgesl")

_SESSIONS: dict[str, Session] = {}


def _program(name: str, units: int, **overrides):
    session = _SESSIONS.setdefault(name, Session(get_workload(name).source))
    return session.program(
        KernelOverrides(compute_units=units, **overrides)
    )


def _run(name, program, *, compiled=True, vectorize=True, fault_plan=None):
    workload = get_workload(name)
    instance = workload.instance(workload.smoke_size)
    executor = program.executor(
        compiled=compiled, vectorize=vectorize, fault_plan=fault_plan
    )
    result = executor.run(workload.entry, *instance.args)
    return result, instance


# -- bit-identity matrix: workloads x CU counts x engine tiers ----------------


@pytest.mark.parametrize("units", CU_COUNTS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_tiers_bit_identical_per_cu_count(name, units):
    """All four engine tiers agree bit-for-bit at this CU count — on
    outputs (against the NumPy reference), steps, modelled time, cycles
    and the per-CU cycle split."""
    workload = get_workload(name)
    program = _program(name, units)
    observed = []
    for compiled, vectorize in TIERS:
        result, instance = _run(
            name, program, compiled=compiled, vectorize=vectorize
        )
        workload.check(instance)
        outputs = {
            pos: np.asarray(arg).tobytes()
            for pos, arg in instance.outputs().items()
        }
        observed.append(((compiled, vectorize), result, outputs))

    _, scalar_result, scalar_outputs = observed[0]
    for tier, result, outputs in observed[1:]:
        assert outputs == scalar_outputs, f"tier {tier}: outputs differ"
        assert result.interpreter_steps == scalar_result.interpreter_steps
        assert result.device_time_ms == scalar_result.device_time_ms, (
            f"tier {tier}: device_time_ms diverged at {units} CUs"
        )
        assert result.kernel_cycles == scalar_result.kernel_cycles
        assert result.cu_cycles == scalar_result.cu_cycles

    if units == 1:
        assert scalar_result.cu_cycles == ()
    else:
        assert len(scalar_result.cu_cycles) == units
        assert all(c > 0 for c in scalar_result.cu_cycles)
        assert max(scalar_result.cu_cycles) <= scalar_result.kernel_cycles


@pytest.mark.parametrize("name", WORKLOADS)
def test_outputs_invariant_across_cu_counts(name):
    """The CU count may only move modelled time: outputs and the
    functional step count are identical at every count, and adding CUs
    never makes the modelled device slower."""
    results = {}
    for units in CU_COUNTS:
        result, instance = _run(name, _program(name, units))
        get_workload(name).check(instance)
        outputs = {
            pos: np.asarray(arg).tobytes()
            for pos, arg in instance.outputs().items()
        }
        results[units] = (result, outputs)
    baseline_units = CU_COUNTS[0]
    base_result, base_outputs = results[baseline_units]
    for units, (result, outputs) in results.items():
        assert outputs == base_outputs, (
            f"{name}: outputs changed between {baseline_units} and "
            f"{units} CUs"
        )
        assert result.interpreter_steps == base_result.interpreter_steps
        if units > baseline_units:
            # sharded compute always gets cheaper; end-to-end time only
            # improves when compute dominates — sgesl's per-k launches
            # are enqueue-overhead-bound at smoke size, and the model is
            # honest about N CUs paying N enqueues per launch
            assert result.kernel_time_s < base_result.kernel_time_s, (
                f"{name}: {units} CUs did not shrink kernel compute"
            )
            if name != "sgesl":
                assert result.device_time_ms < base_result.device_time_ms, (
                    f"{name}: {units} CUs not faster than {baseline_units}"
                )


@pytest.mark.parametrize("units", CU_COUNTS)
def test_modelled_values_deterministic(units):
    """Two identical runs at the same CU count reproduce every modelled
    value exactly — the property the CI scaling floors stand on."""
    program = _program("saxpy", units)
    first, _ = _run("saxpy", program)
    second, _ = _run("saxpy", program)
    assert first.device_time_ms == second.device_time_ms
    assert first.kernel_cycles == second.kernel_cycles
    assert first.interpreter_steps == second.interpreter_steps
    assert first.cu_cycles == second.cu_cycles


def test_single_cu_build_matches_default_build():
    """compute_units=1 must be byte-identical to a build that never
    heard of compute units (the BENCH_pr8 compatibility guarantee)."""
    default_result, _ = _run("saxpy", _program("saxpy", None or 1))
    workload = get_workload("saxpy")
    plain = workload.compile()
    plain_result, instance = _run("saxpy", plain)
    workload.check(instance)
    assert default_result.device_time_ms == plain_result.device_time_ms
    assert default_result.kernel_cycles == plain_result.kernel_cycles
    assert (
        default_result.interpreter_steps == plain_result.interpreter_steps
    )
    assert plain_result.cu_cycles == ()


# -- over-budget rejection ----------------------------------------------------


def test_over_budget_compute_units_rejected():
    """A CU count whose replicated kernels blow the place-and-route
    budget raises a typed DeviceBuildError naming the resource — the
    build never silently clamps."""
    session = Session(get_workload("saxpy").source)
    with pytest.raises(DeviceBuildError, match="place-and-route budget"):
        session.device_build(KernelOverrides(compute_units=100_000))


@pytest.mark.parametrize("bad", (0, -1, 2.5, "4"))
def test_invalid_compute_units_rejected(bad):
    session = Session(get_workload("saxpy").source)
    with pytest.raises(DeviceBuildError, match="compute_units"):
        session.device_build(KernelOverrides(compute_units=bad))


def test_replicated_resources_reported():
    """The utilization report accounts every CU replica."""
    session = Session(get_workload("saxpy").source)
    one = session.device_build(KernelOverrides(compute_units=1)).bitstream
    four = session.device_build(KernelOverrides(compute_units=4)).bitstream
    assert four.resources.luts > one.resources.luts
    assert "(x4 compute units)" in four.report()


# -- double-buffered streaming ------------------------------------------------

#: saxpy smoke arrays are 4 * smoke_size bytes; the boundary cases below
#: are sized against that.
_SAXPY_NBYTES = 4 * get_workload("saxpy").smoke_size


def _stream_result(tile):
    program = _program("saxpy", 1, stream_tile_bytes=tile)
    result, instance = _run("saxpy", program)
    get_workload("saxpy").check(instance)
    return result


def test_stream_tile_equal_to_array_is_not_streamed():
    """tile == nbytes: one tile per transfer — bit-identical timing and
    counters to the non-streamed model."""
    base, _ = _run("saxpy", _program("saxpy", 1))
    streamed = _stream_result(_SAXPY_NBYTES)
    assert streamed.device_time_ms == base.device_time_ms
    assert streamed.transfers == base.transfers
    assert streamed.transfer_time_s == base.transfer_time_s


def test_stream_tile_larger_than_array_is_not_streamed():
    base, _ = _run("saxpy", _program("saxpy", 1))
    streamed = _stream_result(_SAXPY_NBYTES * 64)
    assert streamed.device_time_ms == base.device_time_ms
    assert streamed.transfers == base.transfers


def test_stream_non_dividing_tile_pays_ceil_tiles():
    """A tile that does not divide the array yields ceil(nbytes/tile)
    tile transfers (remainder tile included), moves exactly the same
    bytes, and the overlap never makes the modelled run slower."""
    base, _ = _run("saxpy", _program("saxpy", 1))
    tile = (_SAXPY_NBYTES * 3) // 8  # 3 tiles per array, last one short
    streamed = _stream_result(tile)
    tiles_per_array = -(-_SAXPY_NBYTES // tile)
    assert tiles_per_array == 3
    # saxpy moves 4 array-sized transfers (x, y h2d; y d2h; x readback)
    # plus 2 sub-tile scalars: 4 * 3 + 2 = 14.
    assert streamed.transfers == base.transfers + 4 * (tiles_per_array - 1)
    assert streamed.bytes_h2d == base.bytes_h2d
    assert streamed.bytes_d2h == base.bytes_d2h
    # tiling adds per-tile latency to the DMA engine's busy time, but
    # the overlap with compute keeps the critical path at or below the
    # whole-array model
    assert streamed.transfer_time_s > base.transfer_time_s
    assert streamed.device_time_ms <= base.device_time_ms


def test_invalid_stream_tile_rejected():
    session = Session(get_workload("saxpy").source)
    for bad in (0, -4096, 1.5):
        with pytest.raises(DeviceBuildError, match="stream_tile_bytes"):
            session.device_build(KernelOverrides(stream_tile_bytes=bad))


# -- datasets larger than device memory ---------------------------------------


def _small_bank_session():
    board = U280Board(hbm_bank_bytes=_SAXPY_NBYTES // 2)
    return Session(
        get_workload("saxpy").source, target=TargetConfig(board=board)
    )


def test_oversized_alloc_without_streaming_is_typed():
    """An array bigger than its HBM bank fails as DeviceAllocationError
    (not a raw ClError) and the message points at streaming mode."""
    session = _small_bank_session()
    program = session.program(KernelOverrides())
    workload = get_workload("saxpy")
    instance = workload.instance(workload.smoke_size)
    with pytest.raises(DeviceAllocationError, match="stream_tile_bytes"):
        program.executor().run(workload.entry, *instance.args)


def test_oversized_dataset_runs_with_streaming():
    """With a streaming tile armed the same oversized dataset allocates,
    runs, and still matches the NumPy reference bit-for-bit."""
    session = _small_bank_session()
    tile = _SAXPY_NBYTES // 8
    program = session.program(KernelOverrides(stream_tile_bytes=tile))
    workload = get_workload("saxpy")
    instance = workload.instance(workload.smoke_size)
    result = program.executor().run(workload.entry, *instance.args)
    workload.check(instance)
    assert result.transfers > 6  # tiled transfers


# -- chaos: faults under multi-CU ---------------------------------------------


@pytest.mark.parametrize("units", CU_COUNTS)
def test_transient_dma_fault_recovers_bit_identical(units):
    """A transient DMA fault on a multi-CU run retries and converges to
    accounting bit-identical to the fault-free run — the shards never
    see a partial transfer."""
    program = _program("saxpy", units)
    clean, _ = _run("saxpy", program)
    plan = FaultPlan(
        [FaultSpec(site="dma_start", transient=True, fail_count=1)]
    )
    faulted, instance = _run("saxpy", program, fault_plan=plan)
    get_workload("saxpy").check(instance)
    assert faulted.report is not None and faulted.report.faults_hit == 1
    assert faulted.device_time_ms == clean.device_time_ms
    assert faulted.kernel_cycles == clean.kernel_cycles
    assert faulted.cu_cycles == clean.cu_cycles
    assert faulted.interpreter_steps == clean.interpreter_steps


@pytest.mark.parametrize("units", CU_COUNTS)
def test_persistent_dma_fault_degrades_typed_never_corrupts(units):
    """A persistent DMA fault raises the site's typed error; the input
    arrays the kernel never consumed are untouched (no partial-shard
    corruption leaks into host state)."""
    program = _program("saxpy", units)
    workload = get_workload("saxpy")
    instance = workload.instance(workload.smoke_size)
    before = [
        np.asarray(arg).copy()
        for arg in instance.args
        if isinstance(arg, np.ndarray)
    ]
    plan = FaultPlan([FaultSpec(site="dma_start", transient=False)])
    with pytest.raises(DmaError):
        program.executor(fault_plan=plan).run(
            workload.entry, *instance.args
        )
    after = [
        np.asarray(arg)
        for arg in instance.args
        if isinstance(arg, np.ndarray)
    ]
    for saved, now in zip(before, after):
        assert saved.tobytes() == now.tobytes(), (
            "a faulted DMA mutated host arrays before raising"
        )


@pytest.mark.parametrize("units", CU_COUNTS)
def test_kernel_hang_under_multi_cu_recovers(units):
    """An injected kernel hang at this CU count recovers through the
    watchdog+retry path with fault-free accounting."""
    program = _program("saxpy", units)
    clean, _ = _run("saxpy", program)
    plan = FaultPlan(
        [
            FaultSpec(
                site="kernel_launch",
                kind="hang",
                transient=True,
                fail_count=1,
            )
        ]
    )
    faulted, instance = _run("saxpy", program, fault_plan=plan)
    get_workload("saxpy").check(instance)
    assert faulted.device_time_ms == clean.device_time_ms
    assert faulted.cu_cycles == clean.cu_cycles

"""AMD HLS bridge tests: primitive mapping + LLVM-7 downgrade ([19])."""

from repro.backend.amd_hls import (
    SSDM_PRIMITIVES,
    downgrade_to_llvm7,
    map_to_amd_primitives,
    prepare_for_vitis,
)


class TestPrimitiveMapping:
    def test_pipeline_mapped(self):
        ir = "call void @xlx_pipeline(i32 %v0)\ndeclare void @xlx_pipeline(i32)"
        mapped, used = map_to_amd_primitives(ir)
        assert "@_ssdm_op_SpecPipeline" in mapped
        assert "@xlx_pipeline" not in mapped
        assert "_ssdm_op_SpecPipeline" in used

    def test_all_symbols_have_primitives(self):
        for symbol, primitive in SSDM_PRIMITIVES.items():
            mapped, used = map_to_amd_primitives(f"call void @{symbol}()")
            assert primitive in mapped

    def test_unrelated_calls_untouched(self):
        ir = "call void @my_helper()"
        mapped, used = map_to_amd_primitives(ir)
        assert mapped == ir and used == []


class TestDowngrade:
    def test_fneg_rewritten(self):
        ir = "%1 = fneg float %0"
        assert "fsub float -0.0, %0" in downgrade_to_llvm7(ir)

    def test_freeze_rewritten(self):
        ir = "%1 = freeze i32 %0"
        out = downgrade_to_llvm7(ir)
        assert "freeze" not in out

    def test_fast_flags_expanded(self):
        ir = "%1 = fmul fast float %a, %b"
        assert "fmul nnan contract float" in downgrade_to_llvm7(ir)

    def test_source_filename_stripped(self):
        ir = 'source_filename = "x.mlir"\ndefine void @f() {\n}\n'
        assert "source_filename" not in downgrade_to_llvm7(ir)


class TestPrepareForVitis:
    def test_full_artifact(self):
        ir = (
            'source_filename = "d"\n'
            "define void @k(float* %a) {\n"
            "  call void @xlx_pipeline(i32 1)\n"
            "  %x = fmul fast float 1.0, 2.0\n"
            "  ret void\n}\n"
            "declare void @xlx_pipeline(i32)\n"
        )
        artifact = prepare_for_vitis(ir)
        assert artifact.llvm_version == 7
        assert "_ssdm_op_SpecPipeline" in artifact.llvm_ir
        assert "nnan contract" in artifact.llvm_ir
        # the precompiled runtime library is linked in
        assert "@ftn_rt_itof" in artifact.llvm_ir
        assert "@ftn_rt_stream_read" in artifact.llvm_ir
        assert artifact.primitives_used == ["_ssdm_op_SpecPipeline"]

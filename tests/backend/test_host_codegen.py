"""Host C++/OpenCL code generator tests."""

import pytest

from repro.backend.host_codegen import cpp_type
from repro.pipeline import compile_fortran
from repro.ir.types import IndexType, MemRefType, f32, f64, i1, i32


class TestTypes:
    def test_cpp_types(self):
        assert cpp_type(f32) == "float"
        assert cpp_type(f64) == "double"
        assert cpp_type(i32) == "int32_t"
        assert cpp_type(i1) == "bool"
        assert cpp_type(IndexType()) == "int64_t"
        assert cpp_type(MemRefType(f32, [4])) == "float*"


@pytest.fixture(scope="module")
def saxpy_cpp():
    from tests.conftest import SAXPY_MINI

    return compile_fortran(SAXPY_MINI).host_cpp


class TestOpenClMapping:
    def test_prelude(self, saxpy_cpp):
        assert "#include <CL/cl.h>" in saxpy_cpp
        assert '#include "ftn_rt.hpp"' in saxpy_cpp

    def test_buffer_creation_with_hbm_bank(self, saxpy_cpp):
        assert "ftn_rt::alloc(context" in saxpy_cpp
        assert "/*hbm_bank=*/1" in saxpy_cpp

    def test_counter_runtime_calls(self, saxpy_cpp):
        assert "ftn_rt::acquire(" in saxpy_cpp
        assert "ftn_rt::release(" in saxpy_cpp
        assert "ftn_rt::check_exists(" in saxpy_cpp

    def test_dma_calls(self, saxpy_cpp):
        assert "clEnqueueWriteBuffer" in saxpy_cpp
        assert "clEnqueueReadBuffer" in saxpy_cpp
        assert "clWaitForEvents" in saxpy_cpp

    def test_kernel_lifecycle(self, saxpy_cpp):
        assert 'clCreateKernel(program, "saxpy_kernel_0"' in saxpy_cpp
        assert "clSetKernelArg" in saxpy_cpp
        assert "clEnqueueTask" in saxpy_cpp

    def test_function_signature(self, saxpy_cpp):
        assert "void saxpy(" in saxpy_cpp
        assert "float* " in saxpy_cpp

    def test_control_flow_printed(self, saxpy_cpp):
        assert "if (" in saxpy_cpp
        assert "for (" not in saxpy_cpp or True  # loops may fold away

    def test_compilable_shape(self, saxpy_cpp):
        """Basic structural sanity: balanced braces, statements end with
        ';' or '{' or '}'."""
        assert saxpy_cpp.count("{") == saxpy_cpp.count("}")
        for line in saxpy_cpp.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith(("//", "#", "for", "if")):
                continue
            assert stripped.endswith((";", "{", "}", ")")), line


class TestHostLoops:
    def test_host_for_loop(self):
        source = """
program t
  implicit none
  real :: a(8)
  integer :: i
  do i = 1, 8
    a(i) = 0.0
  end do
!$omp target parallel do
  do i = 1, 8
    a(i) = a(i) + 1.0
  end do
!$omp end target parallel do
end program t
"""
        cpp = compile_fortran(source).host_cpp
        assert "for (int64_t" in cpp

    def test_print_statement(self):
        source = """
program t
  implicit none
  integer :: i
  i = 3
  print *, 'value', i
end program t
"""
        cpp = compile_fortran(source).host_cpp
        assert "std::cout" in cpp and '"value"' in cpp

"""LLVM-IR emission tests."""

import pytest

from repro.backend.llvm_ir import emit_llvm_ir, llvm_type
from repro.baselines import build_saxpy_module, build_sgesl_module
from repro.ir import IRError
from repro.ir.types import (
    FunctionType,
    MemRefType,
    NoneType,
    f32,
    f64,
    i1,
    i32,
    index,
)
from repro.transforms import LowerHlsToFuncPass


def emit(module):
    clone = module.clone()
    LowerHlsToFuncPass().apply(clone)
    return emit_llvm_ir(clone)


class TestTypes:
    def test_llvm_types(self):
        assert llvm_type(f32) == "float"
        assert llvm_type(f64) == "double"
        assert llvm_type(i32) == "i32"
        assert llvm_type(i1) == "i1"
        assert llvm_type(index) == "i64"
        assert llvm_type(MemRefType(f32, [100], 1)) == "float*"
        assert llvm_type(NoneType()) == "void"


class TestEmission:
    def test_module_header(self):
        text = emit(build_sgesl_module())
        assert "target triple" in text
        assert 'source_filename = "device.mlir"' in text

    def test_kernel_definition(self):
        text = emit(build_sgesl_module())
        assert (
            "define void @sgesl_update_hls(float* %arg0, float* %arg1, "
            "float* %arg2, i32* %arg3, i32* %arg4)" in text
        )

    def test_loop_structure(self):
        text = emit(build_sgesl_module())
        assert "phi i64" in text
        assert "icmp slt i64" in text
        assert "br i1" in text

    def test_memory_ops(self):
        text = emit(build_sgesl_module())
        assert "getelementptr inbounds float" in text
        assert "load float, float*" in text
        assert "store float" in text

    def test_fast_math_from_contract(self):
        text = emit(build_sgesl_module())
        assert "fmul fast float" in text
        assert "fadd fast float" in text

    def test_hls_calls_declared(self):
        text = emit(build_saxpy_module())
        assert "call void @xlx_pipeline" in text
        assert "declare void @xlx_pipeline" in text
        assert "call void @xlx_interface" in text

    def test_unlowered_hls_rejected(self):
        with pytest.raises(IRError, match="lower-hls-to-func"):
            emit_llvm_ir(build_saxpy_module())

    def test_unrolled_body_replicated(self):
        text = emit(build_saxpy_module(unroll=10))
        assert text.count("fmul") >= 10


class TestHostModuleEmission:
    def test_scf_if_emitted_as_branches(self):
        from repro.dialects import arith, builtin, func, scf
        from repro.ir import Builder

        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([i32], [i32]))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        zero = b.insert(arith.Constant.int(0, 32)).results[0]
        cond = b.insert(arith.CmpI("sgt", fn.body.args[0], zero)).results[0]
        cell = b.insert(
            __import__("repro.dialects.memref", fromlist=["Alloca"]).Alloca(
                MemRefType(i32, [])
            )
        ).results[0]
        if_op = b.insert(scf.If(cond))
        tb = Builder.at_end(if_op.then_block)
        one = tb.insert(arith.Constant.int(1, 32)).results[0]
        tb.insert(
            __import__("repro.dialects.memref", fromlist=["Store"]).Store(
                one, cell, []
            )
        )
        tb.insert(scf.Yield())
        Builder.at_end(if_op.else_block).insert(scf.Yield())
        out = b.insert(
            __import__("repro.dialects.memref", fromlist=["Load"]).Load(cell, [])
        ).results[0]
        b.insert(func.ReturnOp([out]))
        text = emit_llvm_ir(module)
        assert "_then:" in text and "_else:" in text and "_join:" in text

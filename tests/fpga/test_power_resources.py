"""Power model + resource accounting tests (+ hypothesis monotonicity)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.power import CpuPowerModel, FpgaPowerModel, _jitter
from repro.fpga.resources import (
    ResourceUsage,
    bram_blocks_for,
    shell_usage,
)
from repro.fpga.board import U280Resources


class TestPowerModels:
    def test_fpga_band(self):
        model = FpgaPowerModel()
        for work in (1e4, 1e5, 1e6, 1e7):
            power = model.median_power_w(int(work), label="t")
            assert 20.0 < power < 27.0

    def test_cpu_band(self):
        model = CpuPowerModel()
        for work in (1e4, 1e7):
            assert 48.0 < model.median_power_w(int(work), "t") < 60.0

    def test_cpu_roughly_double_fpga(self):
        fpga = FpgaPowerModel().median_power_w(10_000_000, label="x")
        cpu = CpuPowerModel().median_power_w(10_000_000, "x")
        assert cpu / fpga > 1.9

    def test_deterministic(self):
        model = FpgaPowerModel()
        a = model.median_power_w(12345, label="same")
        b = model.median_power_w(12345, label="same")
        assert a == b

    def test_jitter_bounded_and_keyed(self):
        assert abs(_jitter("k1", 0.5)) <= 0.5
        assert _jitter("k1", 0.5) != _jitter("k2", 0.5)

    def test_fabric_term(self):
        model = FpgaPowerModel()
        small = shell_usage()
        big = ResourceUsage(small.luts + 100_000, 0, small.bram_36k, small.dsp)
        p_small = model.median_power_w(1_000_000, small, "f")
        p_big = model.median_power_w(1_000_000, big, "f")
        assert p_big > p_small

    @given(st.integers(min_value=10, max_value=10**9))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_work_modulo_jitter(self, work):
        """The deterministic part grows with work (jitter bounded 0.45)."""
        model = FpgaPowerModel()
        lo = model.median_power_w(work, label="m")
        hi = model.median_power_w(work * 10, label="m")
        assert hi > lo - 2 * 0.45


class TestResources:
    def test_addition(self):
        a = ResourceUsage(1, 2, 3, 4)
        b = ResourceUsage(10, 20, 30, 40)
        c = a + b
        assert (c.luts, c.ffs, c.bram_36k, c.dsp) == (11, 22, 33, 44)

    def test_percentages_rounding(self):
        shell = shell_usage()
        pct = shell.percentages(U280Resources())
        assert pct.rounded() == (8.19, 10.07, 0.1)

    def test_shell_matches_paper_floor(self):
        """The shell floor sits just under every Table 3/4 entry."""
        pct = shell_usage().percentages(U280Resources())
        assert 8.0 < pct.lut < 8.29
        assert pct.bram == pytest.approx(10.07, abs=0.005)

    @pytest.mark.parametrize(
        "nbytes,blocks",
        [(0, 0), (1024, 0), (1025, 1), (4608, 1), (4609, 2), (46080, 10)],
    )
    def test_bram_blocks(self, nbytes, blocks):
        assert bram_blocks_for(nbytes) == blocks

    @given(st.integers(min_value=0, max_value=10**7))
    @settings(max_examples=50, deadline=None)
    def test_bram_monotone(self, nbytes):
        assert bram_blocks_for(nbytes) <= bram_blocks_for(nbytes + 4096)

"""U280 board model tests."""

import pytest

from repro.fpga.board import U280Board, U280Resources


class TestMemorySpaces:
    def test_layout(self):
        board = U280Board()
        spaces = board.memory_spaces()
        assert spaces[0].name == "host"
        assert spaces[1].name == "HBM[0]"
        assert spaces[16].name == "HBM[15]"
        assert spaces[17].name == "DDR"

    def test_validate(self):
        board = U280Board()
        assert board.validate_memory_space(1).name == "HBM[0]"
        with pytest.raises(ValueError):
            board.validate_memory_space(99)
        with pytest.raises(ValueError):
            board.validate_memory_space(-1)

    def test_resource_totals(self):
        r = U280Resources()
        assert r.luts == 1_303_680
        assert r.bram_36k == 2_016
        assert r.dsp == 9_024


class TestTiming:
    def test_cycles_to_seconds(self):
        board = U280Board()
        assert board.cycles_to_seconds(300e6) == pytest.approx(1.0)

    def test_dma_monotone_within_regimes(self):
        board = U280Board()
        small = [board.dma_time_s(b) for b in (64, 1024, 4096, 8192)]
        assert small == sorted(small)
        large = [
            board.dma_time_s(b) for b in (32 * 1024, 1 << 20, 40 << 20)
        ]
        assert large == sorted(large)

    def test_small_regime_slow_per_byte(self):
        """The per-launch small-transfer path is far below peak bandwidth
        (the mechanism behind Table 2's quadratic scaling)."""
        board = U280Board()
        small_bw = 8192 / board.dma_time_s(8192)
        large_bw = (40 << 20) / board.dma_time_s(40 << 20)
        assert large_bw / small_bw > 10

    def test_zero_bytes(self):
        board = U280Board()
        assert board.dma_time_s(0) > 0  # latency only

    def test_calibration_anchors(self):
        """Keep the calibrated constants anchored to the paper's tables:
        an 8 KiB transfer costs ~50 us (SGESL per-launch), a 40 MB
        transfer ~6 ms (SAXPY bulk)."""
        board = U280Board()
        assert board.dma_time_s(8192) == pytest.approx(51.6e-6, rel=0.25)
        assert board.dma_time_s(40 << 20) == pytest.approx(6.6e-3, rel=0.25)

"""HLS scheduler tests: II derivation and operator binding."""

import pytest

from repro.backend.vitis import VitisCompiler
from repro.baselines import build_saxpy_module, build_sgesl_module
from repro.fpga.board import U280Board
from repro.fpga.scheduler import HlsScheduler
from repro.fpga.resources import shell_usage


def _schedule(module):
    from repro.dialects import func

    scheduler = HlsScheduler(U280Board())
    fn = next(op for op in module.walk() if isinstance(op, func.FuncOp))
    return scheduler.schedule(fn)


class TestMemoryII:
    def test_saxpy_memory_bound(self):
        """y load+store on one bundle -> II = 2 accesses * 16 cycles per
        unroll copy; with unroll 10 the main loop sees 320."""
        schedule = _schedule(build_saxpy_module(unroll=10))
        main = max(
            schedule.loops.values(), key=lambda s: s.unroll_factor
        )
        assert main.unroll_factor == 10
        assert main.memory_ii == 20 * 16  # 10 loads + 10 stores of y
        assert main.achieved_ii == main.memory_ii
        assert main.dependence_ii == 1

    def test_sgesl_ii(self):
        schedule = _schedule(build_sgesl_module())
        (loop,) = schedule.loops.values()
        assert loop.memory_ii == 2 * 16  # b: load + store
        assert loop.achieved_ii == 32
        assert loop.pipelined

    def test_axilite_accesses_free(self):
        """Scalar (control) register reads do not constrain II."""
        schedule = _schedule(build_sgesl_module())
        (loop,) = schedule.loops.values()
        assert "control" not in loop.bundle_accesses

    def test_cycles_model(self):
        schedule = _schedule(build_sgesl_module())
        (loop,) = schedule.loops.values()
        trips = 1000
        cycles = loop.cycles(trips)
        assert cycles == loop.fill_cycles + trips * loop.achieved_ii
        assert loop.cycles(0) == 0


class TestBinding:
    def test_unit_sharing_under_large_ii(self):
        """10 unroll copies of the MAC bind to a single physical unit
        because the achieved II covers them (the Table 3 effect)."""
        schedule = _schedule(build_saxpy_module(unroll=10))
        mulf = next(
            op for op in schedule.operators if op.op_name == "arith.mulf"
        )
        assert mulf.replication == 10
        assert mulf.physical == 1

    def test_mac_dsp_binding_only_with_idiom(self):
        saxpy = _schedule(build_saxpy_module())
        assert saxpy.kernel_resources.dsp == 0
        sgesl = _schedule(build_sgesl_module())
        assert sgesl.kernel_resources.dsp == 12  # one DSP-cascade MAC

    def test_total_includes_shell(self):
        schedule = _schedule(build_sgesl_module())
        shell = shell_usage()
        total = schedule.total_resources
        assert total.luts > shell.luts
        assert total.bram_36k == shell.bram_36k  # kernel adds no BRAM
        assert total.dsp == shell.dsp + 12


class TestVitisReport:
    def test_report_contents(self):
        bitstream = VitisCompiler().compile(build_sgesl_module())
        report = bitstream.report()
        assert "xilinx_u280" in report
        assert "II=32" in report
        assert "LUT" in report and "DSP" in report

    def test_requires_fpga_module(self):
        from repro.dialects import builtin
        from repro.ir import IRError

        with pytest.raises(IRError, match="fpga"):
            VitisCompiler().compile(builtin.ModuleOp())

"""HLS scheduler tests: II derivation and operator binding."""

import pytest

from repro.backend.vitis import VitisCompiler
from repro.baselines import build_saxpy_module, build_sgesl_module
from repro.fpga.board import U280Board
from repro.fpga.scheduler import HlsScheduler
from repro.fpga.resources import shell_usage


def _schedule(module):
    from repro.dialects import func

    scheduler = HlsScheduler(U280Board())
    fn = next(op for op in module.walk() if isinstance(op, func.FuncOp))
    return scheduler.schedule(fn)


class TestMemoryII:
    def test_saxpy_memory_bound(self):
        """y load+store on one bundle -> II = 2 accesses * 16 cycles per
        unroll copy; with unroll 10 the main loop sees 320."""
        schedule = _schedule(build_saxpy_module(unroll=10))
        main = max(
            schedule.loops.values(), key=lambda s: s.unroll_factor
        )
        assert main.unroll_factor == 10
        assert main.memory_ii == 20 * 16  # 10 loads + 10 stores of y
        assert main.achieved_ii == main.memory_ii
        assert main.dependence_ii == 1

    def test_sgesl_ii(self):
        schedule = _schedule(build_sgesl_module())
        (loop,) = schedule.loops.values()
        assert loop.memory_ii == 2 * 16  # b: load + store
        assert loop.achieved_ii == 32
        assert loop.pipelined

    def test_axilite_accesses_free(self):
        """Scalar (control) register reads do not constrain II."""
        schedule = _schedule(build_sgesl_module())
        (loop,) = schedule.loops.values()
        assert "control" not in loop.bundle_accesses

    def test_cycles_model(self):
        schedule = _schedule(build_sgesl_module())
        (loop,) = schedule.loops.values()
        trips = 1000
        cycles = loop.cycles(trips)
        assert cycles == loop.fill_cycles + trips * loop.achieved_ii
        assert loop.cycles(0) == 0


class TestNestExclusion:
    """Depth-3 nests: an outer loop's II/latency/bundle accounting must
    exclude nested loops — inner loops are charged by their own
    schedules (ROADMAP, PR 2 rank-n work, extended to rank 3 in PR 5)."""

    @staticmethod
    def _workload_schedule(name):
        from repro.session import Session
        from repro.workloads import get_workload

        program = Session(get_workload(name).source).program()
        return _schedule(program.device_module)

    def test_heat3d_outer_loops_charge_nothing(self):
        schedule = self._workload_schedule("heat3d")
        loops = list(schedule.loops.values())
        assert len(loops) == 3
        outers = [s for s in loops if not s.pipelined]
        (inner,) = [s for s in loops if s.pipelined]
        assert len(outers) == 2
        for outer in outers:
            assert outer.bundle_accesses == {}
            assert outer.memory_ii == 0
            assert outer.achieved_ii == 1
        # seven a loads on gmem0 + one b store on gmem1, innermost only
        assert inner.bundle_accesses == {"gmem0": 7, "gmem1": 1}
        assert inner.memory_ii == 7 * 16  # the hottest bundle bounds II

    def test_batched_gemm_k_loop_charged_separately(self):
        schedule = self._workload_schedule("batched_gemm")
        loops = list(schedule.loops.values())
        assert len(loops) == 4
        k_loop = max(loops, key=lambda s: s.memory_ii)
        # c load+store (gmem2) + a load (gmem0) + b load (gmem1), all in
        # the serial k body — none of it leaks into the enclosing loops
        assert k_loop.bundle_accesses == {
            "gmem0": 1, "gmem1": 1, "gmem2": 2,
        }
        # carried c(ib,i,j) recurrence: mulf (4) + addf (7) chain
        assert k_loop.dependence_ii == 11
        for other in loops:
            if other is k_loop:
                continue
            assert other.bundle_accesses == {}
            assert other.memory_ii == 0


class TestBinding:
    def test_unit_sharing_under_large_ii(self):
        """10 unroll copies of the MAC bind to a single physical unit
        because the achieved II covers them (the Table 3 effect)."""
        schedule = _schedule(build_saxpy_module(unroll=10))
        mulf = next(
            op for op in schedule.operators if op.op_name == "arith.mulf"
        )
        assert mulf.replication == 10
        assert mulf.physical == 1

    def test_mac_dsp_binding_only_with_idiom(self):
        saxpy = _schedule(build_saxpy_module())
        assert saxpy.kernel_resources.dsp == 0
        sgesl = _schedule(build_sgesl_module())
        assert sgesl.kernel_resources.dsp == 12  # one DSP-cascade MAC

    def test_total_includes_shell(self):
        schedule = _schedule(build_sgesl_module())
        shell = shell_usage()
        total = schedule.total_resources
        assert total.luts > shell.luts
        assert total.bram_36k == shell.bram_36k  # kernel adds no BRAM
        assert total.dsp == shell.dsp + 12


class TestVitisReport:
    def test_report_contents(self):
        bitstream = VitisCompiler().compile(build_sgesl_module())
        report = bitstream.report()
        assert "xilinx_u280" in report
        assert "II=32" in report
        assert "LUT" in report and "DSP" in report

    def test_requires_fpga_module(self):
        from repro.dialects import builtin
        from repro.ir import IRError

        with pytest.raises(IRError, match="fpga"):
            VitisCompiler().compile(builtin.ModuleOp())

"""Shared test helpers: tiny IR builders and Fortran snippets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder, verify
from repro.ir.types import FunctionType, MemRefType, f32


@pytest.fixture
def vadd_module() -> builtin.ModuleOp:
    """module { func @vadd(%x, %y: memref<16xf32>) { y[i] += x[i] } }"""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [16])
    fn = func.FuncOp("vadd", FunctionType([vec, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(16)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y = fn.body.args
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    yv = inner.insert(memref.Load(y, [loop.induction_var])).results[0]
    s = inner.insert(arith.AddF(xv, yv)).results[0]
    inner.insert(memref.Store(s, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    verify(module)
    return module


SAXPY_MINI = """
subroutine saxpy(a, x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
!$omp target parallel do simd simdlen(4)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
!$omp end target parallel do simd
end subroutine saxpy
"""


@pytest.fixture(scope="session")
def saxpy_mini_source() -> str:
    return SAXPY_MINI


def run_offload_saxpy(program, n: int = 128, a: float = 3.0):
    """Run a compiled saxpy program and return (y, expected, result)."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    expected = (y + np.float32(a) * x).astype(np.float32)
    result = program.executor().run(
        "saxpy", np.array(a, dtype=np.float32), x, y,
        np.array(n, dtype=np.int32),
    )
    return y, expected, result

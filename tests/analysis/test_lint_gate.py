"""The lint gate: gallery and examples stay clean, and the checker is
reachable through every advertised surface — ``check-kernels`` in a
declarative pipeline, ``Session.diagnostics()``, and the
``python -m repro.lint`` CLI (text/json/exit codes)."""

import json

import pytest

import repro.workloads  # noqa: F401  (populates the registry)
from repro.analysis import KernelCheckError, check_module
from repro.ir.pass_manager import PassManager
from repro.lint import collect_sources, lint_source, main
from repro.session import Session
from repro.workloads.base import all_workloads

RACY = """
subroutine k(x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    y(1) = x(i)
  end do
!$omp end target parallel do
end subroutine k
"""

CLEAN = RACY.replace("y(1)", "y(i)")


# ---------------------------------------------------------------------------
# Gallery-wide and examples-wide cleanliness guards
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "workload", all_workloads(), ids=lambda w: w.name
)
def test_gallery_workload_is_lint_clean(workload):
    report = lint_source(workload.source, workload.name)
    assert report.diagnostics == [], [
        d.format() for d in report.diagnostics
    ]


def test_examples_fortran_literals_are_lint_clean():
    sources = collect_sources(["examples"])
    assert sources, "examples/ should embed Fortran literals"
    for name, source in sources:
        report = lint_source(source, name)
        assert report.diagnostics == [], (
            name,
            [d.format() for d in report.diagnostics],
        )


# ---------------------------------------------------------------------------
# check-kernels as a pass
# ---------------------------------------------------------------------------


def test_check_kernels_composes_and_roundtrips_spec():
    pm = PassManager.parse("check-kernels,canonicalize")
    assert pm.spec() == "check-kernels,canonicalize"
    module = Session(RACY).frontend().module
    pm.run(module)  # default: report, don't raise
    check_pass = pm.passes[0]
    assert [d.code for d in check_pass.diagnostics] == ["RACE001"]


def test_check_kernels_fail_on_error_raises():
    pm = PassManager.parse("check-kernels{fail_on_error=true}")
    assert pm.spec() == "check-kernels{fail_on_error=true}"
    module = Session(RACY).frontend().module
    with pytest.raises(KernelCheckError, match="RACE001"):
        pm.run(module)
    PassManager.parse("check-kernels{fail_on_error=true}").run(
        Session(CLEAN).frontend().module
    )


def test_session_diagnostics_api():
    assert [(d.code, d.line) for d in Session(RACY).diagnostics()] == [
        ("RACE001", 10)
    ]
    assert Session(CLEAN).diagnostics() == []


def test_check_module_accepts_caller_engine():
    from repro.analysis import DiagnosticEngine

    engine = DiagnosticEngine()
    returned = check_module(Session(RACY).frontend().module, engine)
    assert returned is engine
    assert engine.error_count == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_text_reports_race_and_exits_1(tmp_path, capsys):
    path = tmp_path / "racy.f90"
    path.write_text(RACY)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "error[RACE001]" in out
    assert f"{path}:" in out
    assert "1 error(s)" in out


def test_cli_clean_file_exits_0(tmp_path, capsys):
    path = tmp_path / "clean.f90"
    path.write_text(CLEAN)
    assert main([str(path)]) == 0
    assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    path = tmp_path / "racy.f90"
    path.write_text(RACY)
    assert main([str(path), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    [entry] = payload["sources"]
    assert entry["failed"] is True
    assert entry["diagnostics"][0]["code"] == "RACE001"
    assert entry["diagnostics"][0]["line"] == 10


def test_cli_werror_promotes_warnings(tmp_path, capsys):
    dep = RACY.replace("y(1) = x(i)", "y(i + 1) = y(i) * 0.5 + x(i)")
    path = tmp_path / "dep.f90"
    path.write_text(dep)
    assert main([str(path)]) == 0  # DEP001 is a warning
    capsys.readouterr()
    assert main([str(path), "--werror"]) == 1


def test_cli_usage_errors(tmp_path, capsys):
    assert main([]) == 2  # no inputs
    assert main([str(tmp_path / "missing.f90")]) == 2
    capsys.readouterr()


def test_cli_gallery_gate(capsys):
    assert main(["--gallery", "--werror"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_cli_frontend_error_is_a_located_diagnostic(tmp_path, capsys):
    path = tmp_path / "broken.f90"
    path.write_text("subroutine k(\nend subroutine k\n")
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "frontend rejected the source" in out

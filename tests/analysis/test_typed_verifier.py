"""Typed IR verification (TYPE001–TYPE003).

The textual IR parser builds ops generically (it does not go through the
typed constructors), so ill-typed modules can be written down directly —
exactly the shape a buggy rewrite pass would produce in memory.  Each
fixture is checked both ways: ``verify()`` must raise with the rule code
in the message, and ``check_module`` must report the same condition as a
source-located diagnostic (the ``loc`` attributes below).
"""

import pytest

from repro.analysis import check_module
from repro.ir import parse_module, verify
from repro.ir.verifier import VerificationError, typed_check_op


def wrap(body: str, *, name: str, signature: str = "() -> ()", args: str = "") -> str:
    return (
        '"builtin.module"() ({\n'
        f'  "func.func"() <{{function_type = {signature}, sym_name = "{name}", '
        'sym_visibility = "public"}> ({\n'
        f"    ^bb({args}):\n"
        f"{body}"
        '      "func.return"() : () -> ()\n'
        "  }) : () -> ()\n"
        "}) : () -> ()\n"
    )


TYPE001_MIXED_ADDF = wrap(
    """\
      %0 = "arith.constant"() <{value = 1.0 : f32}> : () -> (f32)
      %1 = "arith.constant"() <{value = 2.0 : f64}> : () -> (f64)
      %2 = "arith.addf"(%0, %1) <{loc = 12 : i64}> : (f32, f64) -> (f32)
""",
    name="bad_addf",
)

TYPE001_SILENT = TYPE001_MIXED_ADDF.replace("f64", "f32")

TYPE002_RANK_MISMATCH = wrap(
    """\
      %0 = "arith.constant"() <{value = 0 : index}> : () -> (index)
      %1 = "memref.load"(%a, %0) <{loc = 7 : i64}> : (memref<4x4xf32, 1 : i32>, index) -> (f32)
""",
    name="bad_load",
    signature="(memref<4x4xf32, 1 : i32>) -> ()",
    args="%a: memref<4x4xf32, 1 : i32>",
)

TYPE002_SILENT = TYPE002_RANK_MISMATCH.replace(
    '"memref.load"(%a, %0) <{loc = 7 : i64}> : (memref<4x4xf32, 1 : i32>, index)',
    '"memref.load"(%a, %0, %0) <{loc = 7 : i64}> : (memref<4x4xf32, 1 : i32>, index, index)',
)

TYPE003_YIELD_MISMATCH = wrap(
    """\
      %0 = "arith.constant"() <{value = 0 : index}> : () -> (index)
      %1 = "arith.constant"() <{value = 1 : index}> : () -> (index)
      %2 = "arith.constant"() <{value = 4 : index}> : () -> (index)
      %3 = "arith.constant"() <{value = 1.0 : f32}> : () -> (f32)
      %4 = "scf.for"(%0, %2, %1, %3) <{loc = 9 : i64}> ({
        ^bb(%i: index, %acc: f32):
          %5 = "arith.constant"() <{value = 2.0 : f64}> : () -> (f64)
          "scf.yield"(%5) : (f64) -> ()
      }) : (index, index, index, f32) -> (f32)
""",
    name="bad_for",
)

TYPE003_SILENT = TYPE003_YIELD_MISMATCH.replace("f64", "f32")


CASES = [
    ("TYPE001", TYPE001_MIXED_ADDF, TYPE001_SILENT, 12),
    ("TYPE002", TYPE002_RANK_MISMATCH, TYPE002_SILENT, 7),
    ("TYPE003", TYPE003_YIELD_MISMATCH, TYPE003_SILENT, 9),
]


@pytest.mark.parametrize("code,bad,good,line", CASES, ids=[c[0] for c in CASES])
def test_verify_raises_with_rule_code(code, bad, good, line):
    with pytest.raises(VerificationError, match=rf"\[{code}\]"):
        verify(parse_module(bad))
    verify(parse_module(good))  # the well-typed twin is clean


@pytest.mark.parametrize("code,bad,good,line", CASES, ids=[c[0] for c in CASES])
def test_check_module_reports_located_diagnostic(code, bad, good, line):
    diags = check_module(parse_module(bad)).sorted()
    assert [d.code for d in diags] == [code]
    assert diags[0].severity == "error"
    assert diags[0].line == line
    assert len(check_module(parse_module(good))) == 0


def test_select_value_legs_must_agree():
    bad = wrap(
        """\
      %0 = "arith.constant"() <{value = 1 : i1}> : () -> (i1)
      %1 = "arith.constant"() <{value = 1.0 : f32}> : () -> (f32)
      %2 = "arith.constant"() <{value = 2.0 : f64}> : () -> (f64)
      %3 = "arith.select"(%0, %1, %2) <{loc = 4 : i64}> : (i1, f32, f64) -> (f32)
""",
        name="bad_select",
    )
    with pytest.raises(VerificationError, match=r"\[TYPE001\]"):
        verify(parse_module(bad))


def test_typed_check_op_is_none_for_untyped_ops():
    module = parse_module(TYPE001_SILENT)
    for op in module.walk():
        assert typed_check_op(op) is None

"""Per-rule fixtures: each code has a firing kernel and a silent twin.

Every firing fixture asserts the *Fortran line* of the diagnostic — the
line numbers below index into the snippet strings (1-based, counting
from the leading newline), which is exactly what the lexer/lowering
``loc`` threading must reproduce on the IR.
"""

from repro.analysis import check_module
from repro.session import Session


def diags_for(source: str):
    return check_module(Session(source).frontend().module).sorted()


def codes(source: str):
    return [d.code for d in diags_for(source)]


# ---------------------------------------------------------------------------
# RACE001 — write-write races
# ---------------------------------------------------------------------------

RACE001_INVARIANT = """
subroutine k(x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    y(1) = x(i)
  end do
!$omp end target parallel do
end subroutine k
"""

RACE001_INVARIANT_SILENT = RACE001_INVARIANT.replace("y(1)", "y(i)")


def test_race001_invariant_subscript_fires_with_line():
    diags = diags_for(RACE001_INVARIANT)
    assert [d.code for d in diags] == ["RACE001"]
    assert diags[0].severity == "error"
    assert diags[0].kernel == "k"
    assert diags[0].line == 10  # the y(1) = x(i) line


def test_race001_affine_subscript_silent():
    assert codes(RACE001_INVARIANT_SILENT) == []


RACE001_SCALAR = """
subroutine k(x, s, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: s
  integer :: i
!$omp target parallel do
  do i = 1, n
    s = s + x(i)
  end do
!$omp end target parallel do
end subroutine k
"""

#: the spmv shape: the scalar is (re)initialized before it is read, so
#: the implicit privatization is exactly what the programmer meant
RACE001_SCALAR_SILENT = """
subroutine k(x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  real :: t
  integer :: i
!$omp target parallel do
  do i = 1, n
    t = x(i) * 2.0
    y(i) = t
  end do
!$omp end target parallel do
end subroutine k
"""


def test_race001_private_scalar_accumulation_fires():
    diags = diags_for(RACE001_SCALAR)
    assert [d.code for d in diags] == ["RACE001"]
    assert "reduction" in diags[0].message
    assert diags[0].line == 10  # the s = s + x(i) line


def test_race001_initialized_private_scalar_silent():
    assert codes(RACE001_SCALAR_SILENT) == []


RACE001_OVERLAP = """
subroutine k(a, b, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: b(n)
  real, intent(inout) :: a(n)
  integer :: i
!$omp target parallel do
  do i = 2, n - 1
    a(i) = b(i)
    a(i + 1) = b(i) * 2.0
  end do
!$omp end target parallel do
end subroutine k
"""

RACE001_OVERLAP_SILENT = RACE001_OVERLAP.replace("a(i + 1)", "a(i)")


def test_race001_overlapping_affine_stores_fire():
    diags = diags_for(RACE001_OVERLAP)
    assert [d.code for d in diags] == ["RACE001"]
    assert diags[0].line == 11  # the a(i + 1) store


def test_race001_same_cell_twin_stores_silent():
    assert codes(RACE001_OVERLAP_SILENT) == []


# ---------------------------------------------------------------------------
# RACE002 — reduction combiner contradictions
# ---------------------------------------------------------------------------

RACE002_MISMATCH = """
subroutine k(x, s, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: s
  integer :: i
!$omp target parallel do reduction(+:s)
  do i = 1, n
    s = s * x(i)
  end do
!$omp end target parallel do
end subroutine k
"""

RACE002_SILENT = RACE002_MISMATCH.replace("s = s * x(i)", "s = s + x(i)")


def test_race002_combiner_kind_mismatch_fires():
    diags = diags_for(RACE002_MISMATCH)
    assert [d.code for d in diags] == ["RACE002"]
    assert diags[0].severity == "error"
    assert "reduction(mul)" in diags[0].message
    assert "reduction(add)" in diags[0].message
    assert diags[0].line == 10


def test_race002_matching_combiner_silent():
    assert codes(RACE002_SILENT) == []


RACE002_OVERWRITE = RACE002_MISMATCH.replace("s = s * x(i)", "s = x(i) + x(i)")


def test_race002_overwrite_without_reading_back_fires():
    diags = diags_for(RACE002_OVERWRITE)
    assert [d.code for d in diags] == ["RACE002"]
    assert "overwrites" in diags[0].message


# ---------------------------------------------------------------------------
# RACE003 — indirect stores without a static injectivity basis
# ---------------------------------------------------------------------------

RACE003_SCALED = """
subroutine k(idx, w, a, s, n)
  implicit none
  integer, intent(in) :: n, s
  integer, intent(in) :: idx(n)
  real, intent(in) :: w(n)
  real, intent(inout) :: a(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    a(s * idx(i)) = w(i)
  end do
!$omp end target parallel do
end subroutine k
"""

#: plain permutation scatter: the gather chain is pure, the vectorizer's
#: runtime injectivity proof covers it — silent
RACE003_SILENT = """
subroutine k(idx, w, a, n)
  implicit none
  integer, intent(in) :: n
  integer, intent(in) :: idx(n)
  real, intent(in) :: w(n)
  real, intent(inout) :: a(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    a(idx(i)) = w(i)
  end do
!$omp end target parallel do
end subroutine k
"""

#: the histogram accumulate fold — repeated indices combine in iteration
#: order, no injectivity needed
RACE003_ACCUMULATE_SILENT = """
subroutine k(bins, w, h, n, nb)
  implicit none
  integer, intent(in) :: n, nb
  integer, intent(in) :: bins(n)
  real, intent(in) :: w(n)
  real, intent(inout) :: h(nb)
  integer :: i
!$omp target parallel do
  do i = 1, n
    h(bins(i)) = h(bins(i)) + w(i)
  end do
!$omp end target parallel do
end subroutine k
"""


def test_race003_runtime_scaled_gather_fires():
    diags = diags_for(RACE003_SCALED)
    assert [d.code for d in diags] == ["RACE003"]
    assert diags[0].severity == "warning"
    assert diags[0].line == 11  # the a(s * idx(i)) store


def test_race003_pure_permutation_scatter_silent():
    assert codes(RACE003_SILENT) == []


def test_race003_accumulate_fold_silent():
    assert codes(RACE003_ACCUMULATE_SILENT) == []


# ---------------------------------------------------------------------------
# DEP001 / DEP002 — affine carried recurrences
# ---------------------------------------------------------------------------

DEP001_RECURRENCE = """
subroutine k(a, b, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: b(n)
  real, intent(inout) :: a(n)
  integer :: i
!$omp target parallel do
  do i = 1, n - 1
    a(i + 1) = a(i) * 0.5 + b(i)
  end do
!$omp end target parallel do
end subroutine k
"""

DEP001_SILENT = DEP001_RECURRENCE.replace("a(i + 1)", "a(i)")


def test_dep001_carried_recurrence_fires_with_ii():
    diags = diags_for(DEP001_RECURRENCE)
    assert [d.code for d in diags] == ["DEP001"]
    assert diags[0].severity == "warning"
    assert "distance 1" in diags[0].message
    assert "II" in diags[0].message
    assert diags[0].line == 10


def test_dep001_same_cell_update_silent():
    assert codes(DEP001_SILENT) == []


DEP002_SIMD = DEP001_RECURRENCE.replace(
    "!$omp target parallel do\n", "!$omp target parallel do simd simdlen(4)\n"
).replace(
    "!$omp end target parallel do\n", "!$omp end target parallel do simd\n"
)

DEP002_SILENT = """
subroutine k(a, x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
!$omp target parallel do simd simdlen(4)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
!$omp end target parallel do simd
end subroutine k
"""


def test_dep002_recurrence_under_simd_fires():
    diags = diags_for(DEP002_SIMD)
    assert [d.code for d in diags] == ["DEP002"]
    assert "simd" in diags[0].message
    assert diags[0].line == 10


def test_dep002_streaming_simd_silent():
    assert codes(DEP002_SILENT) == []

"""Diagnostics engine unit tests: catalogue, ordering, report logic."""

import pytest

from repro.analysis import RULES, SEVERITIES, Diagnostic, DiagnosticEngine, LintReport


def test_catalogue_covers_all_rule_families():
    codes = set(RULES)
    assert {"RACE001", "RACE002", "RACE003"} <= codes
    assert {"DEP001", "DEP002"} <= codes
    assert {"TYPE001", "TYPE002", "TYPE003"} <= codes
    for severity, summary in RULES.values():
        assert severity in SEVERITIES
        assert summary


def test_emit_uses_catalogued_severity():
    engine = DiagnosticEngine()
    diag = engine.emit("RACE001", "boom", kernel="k", line=7)
    assert diag.severity == "error"
    assert engine.emit("DEP001", "slow").severity == "warning"
    assert engine.error_count == 1
    assert engine.warning_count == 1
    assert engine.has_errors


def test_emit_rejects_unknown_code_and_severity():
    engine = DiagnosticEngine()
    with pytest.raises(ValueError, match="unknown rule code"):
        engine.emit("NOPE42", "message")
    with pytest.raises(ValueError, match="unknown severity"):
        engine.emit("RACE001", "message", severity="fatal")
    assert len(engine) == 0


def test_format_includes_code_kernel_and_line():
    diag = Diagnostic("error", "RACE001", "race here", kernel="saxpy", line=12)
    text = diag.format()
    assert "RACE001" in text
    assert "'saxpy'" in text
    assert "line 12" in text
    assert diag.as_dict() == {
        "severity": "error",
        "code": "RACE001",
        "message": "race here",
        "kernel": "saxpy",
        "line": 12,
    }


def test_sorted_is_deterministic_by_kernel_line_code():
    engine = DiagnosticEngine()
    engine.emit("DEP001", "b", kernel="z", line=1)
    engine.emit("RACE001", "a", kernel="a", line=9)
    engine.emit("RACE001", "c", kernel="a", line=2)
    assert [(d.kernel, d.line) for d in engine.sorted()] == [
        ("a", 2),
        ("a", 9),
        ("z", 1),
    ]


def test_by_code_and_clear():
    engine = DiagnosticEngine()
    engine.emit("RACE001", "x")
    engine.emit("RACE001", "y")
    engine.emit("DEP002", "z")
    assert len(engine.by_code("RACE001")) == 2
    engine.clear()
    assert len(engine) == 0


def test_lint_report_failure_disposition():
    clean = LintReport("a.f90", [])
    assert not clean.failed() and not clean.failed(werror=True)
    warn = LintReport("b.f90", [Diagnostic("warning", "DEP001", "w")])
    assert not warn.failed()
    assert warn.failed(werror=True)
    err = LintReport("c.f90", [Diagnostic("error", "RACE001", "e")])
    assert err.failed()

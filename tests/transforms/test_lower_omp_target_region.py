"""Tests for *lower omp target region* and kernel extraction."""

from repro.frontend import compile_to_core
from repro.ir import PassManager, print_op, verify
from repro.transforms import (
    ExtractDeviceModulePass,
    LowerOmpMappedDataPass,
    LowerOmpTargetRegionPass,
    split_host_device,
)


def run_passes(source: str, *passes):
    module = compile_to_core(source).module
    pm = PassManager(verify_each=True)
    pm.add(*passes)
    pm.run(module)
    return module


class TestKernelLowering:
    def test_target_becomes_create_launch_wait(self, saxpy_mini_source):
        module = run_passes(
            saxpy_mini_source,
            LowerOmpMappedDataPass(),
            LowerOmpTargetRegionPass(),
        )
        names = [op.name for op in module.walk()]
        assert "omp.target" not in names
        create_at = names.index("device.kernel_create")
        launch_at = names.index("device.kernel_launch")
        wait_at = names.index("device.kernel_wait")
        assert create_at < launch_at < wait_at

    def test_kernel_region_holds_body(self, saxpy_mini_source):
        module = run_passes(
            saxpy_mini_source,
            LowerOmpMappedDataPass(),
            LowerOmpTargetRegionPass(),
        )
        create = next(
            op for op in module.walk() if op.name == "device.kernel_create"
        )
        inner_names = {op.name for op in create.regions[0].walk()}
        assert "omp.loop_nest" in inner_names
        assert not create.is_extracted

    def test_launch_and_wait_use_handle(self, saxpy_mini_source):
        module = run_passes(
            saxpy_mini_source,
            LowerOmpMappedDataPass(),
            LowerOmpTargetRegionPass(),
        )
        create = next(
            op for op in module.walk() if op.name == "device.kernel_create"
        )
        uses = {use.operation.name for use in create.results[0].uses}
        assert uses == {"device.kernel_launch", "device.kernel_wait"}


class TestExtraction:
    def _extracted(self, source):
        return run_passes(
            source,
            LowerOmpMappedDataPass(),
            LowerOmpTargetRegionPass(),
            ExtractDeviceModulePass(),
        )

    def test_listing2_shape(self, saxpy_mini_source):
        """After extraction the IR matches the paper's Listing 2: an empty
        kernel_create region with device_function, plus a second module
        with target="fpga" containing the kernel function."""
        module = self._extracted(saxpy_mini_source)
        create = next(
            op for op in module.walk() if op.name == "device.kernel_create"
        )
        assert create.is_extracted
        assert create.device_function == "saxpy_kernel_0"
        text = print_op(module)
        assert 'target = "fpga"' in text
        assert "device_function = @saxpy_kernel_0" in text

    def test_kernel_function_signature(self, saxpy_mini_source):
        module = self._extracted(saxpy_mini_source)
        host, device = split_host_device(module)
        kernel = next(
            op for op in device.walk() if op.name == "func.func"
        )
        create = next(
            op for op in host.walk() if op.name == "device.kernel_create"
        )
        kernel_types = [a.type for a in kernel.body.args]
        assert kernel_types == [o.type for o in create.operands]
        assert all(t.memory_space == 1 for t in kernel_types)
        assert kernel.body.last_op.name == "func.return"

    def test_split_detaches(self, saxpy_mini_source):
        module = self._extracted(saxpy_mini_source)
        host, device = split_host_device(module)
        assert device.target == "fpga"
        # the device module is no longer nested in the host module
        nested = [
            op for op in host.walk()
            if op.name == "builtin.module" and op is not host
        ]
        assert nested == []
        verify(host)
        verify(device)

    def test_multiple_kernels_numbered(self):
        source = """
subroutine s(a, n)
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
!$omp end target parallel do
!$omp target parallel do
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
!$omp end target parallel do
end subroutine s
"""
        module = self._extracted(source)
        _, device = split_host_device(module)
        kernels = sorted(
            op.attributes["sym_name"].value
            for op in device.walk()
            if op.name == "func.func"
        )
        assert kernels == ["s_kernel_0", "s_kernel_1"]

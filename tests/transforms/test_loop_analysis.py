"""Dependence analysis / II computation tests."""


from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder
from repro.ir.types import FunctionType, MemRefType, f32, index
from repro.transforms.loop_analysis import (
    DEFAULT_LATENCIES,
    classify_index,
    float_chain_latency,
    loop_carried_dependences,
    min_initiation_interval,
)


def _loop_skeleton(arg_types):
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType(list(arg_types), []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(100)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    b.insert(func.ReturnOp())
    return module, fn, loop, Builder.at_end(loop.body)


class TestClassifyIndex:
    def test_iv_itself(self):
        _, _, loop, inner = _loop_skeleton([])
        iv = loop.induction_var
        assert classify_index(iv, iv).kind == "affine"
        assert classify_index(iv, iv).parameter == 1

    def test_affine_offset(self):
        _, _, loop, inner = _loop_skeleton([])
        one = inner.insert(arith.Constant.index(1)).results[0]
        shifted = inner.insert(arith.AddI(loop.induction_var, one)).results[0]
        inner.insert(scf.Yield())
        pattern = classify_index(shifted, loop.induction_var)
        assert pattern.kind == "affine" and pattern.parameter == 1

    def test_scaled(self):
        _, _, loop, inner = _loop_skeleton([])
        two = inner.insert(arith.Constant.index(2)).results[0]
        scaled = inner.insert(arith.MulI(loop.induction_var, two)).results[0]
        inner.insert(scf.Yield())
        assert classify_index(scaled, loop.induction_var).parameter == 2

    def test_invariant_constant(self):
        _, _, loop, inner = _loop_skeleton([])
        c = inner.insert(arith.Constant.index(7)).results[0]
        inner.insert(scf.Yield())
        assert classify_index(c, loop.induction_var).kind == "invariant"

    def test_periodic_mod(self):
        _, _, loop, inner = _loop_skeleton([])
        n = inner.insert(arith.Constant.index(8)).results[0]
        slot = inner.insert(arith.RemSI(loop.induction_var, n)).results[0]
        inner.insert(scf.Yield())
        pattern = classify_index(slot, loop.induction_var)
        assert pattern.kind == "periodic" and pattern.parameter == 8

    def test_outer_value_is_invariant(self):
        module, fn, loop, inner = _loop_skeleton([MemRefType(index, [])])
        # load computed OUTSIDE the loop: invariant by position
        outer = Builder.before(loop)
        loaded = outer.insert(memref.Load(fn.body.args[0], [])).results[0]
        inner.insert(scf.Yield())
        body = loop.regions[0].block
        assert classify_index(loaded, loop.induction_var, body).kind == \
            "invariant"


class TestDependences:
    def test_elementwise_no_dep(self):
        _, fn, loop, inner = _loop_skeleton([MemRefType(f32, [100])])
        a = fn.body.args[0]
        v = inner.insert(memref.Load(a, [loop.induction_var])).results[0]
        doubled = inner.insert(arith.AddF(v, v)).results[0]
        inner.insert(memref.Store(doubled, a, [loop.induction_var]))
        inner.insert(scf.Yield())
        assert loop_carried_dependences(loop) == []
        assert min_initiation_interval(loop) == 1

    def test_rank0_recurrence(self):
        _, fn, loop, inner = _loop_skeleton([MemRefType(f32, [])])
        s = fn.body.args[0]
        v = inner.insert(memref.Load(s, [])).results[0]
        one = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        acc = inner.insert(arith.AddF(v, one)).results[0]
        inner.insert(memref.Store(acc, s, []))
        inner.insert(scf.Yield())
        deps = loop_carried_dependences(loop)
        assert len(deps) == 1 and deps[0].distance == 1
        assert min_initiation_interval(loop) >= DEFAULT_LATENCIES["arith.addf"]

    def test_round_robin_distance(self):
        """copies[(iv) mod 8]: distance 8 -> II collapses."""
        _, fn, loop, inner = _loop_skeleton([MemRefType(f32, [8])])
        copies = fn.body.args[0]
        n = inner.insert(arith.Constant.index(8)).results[0]
        slot = inner.insert(arith.RemSI(loop.induction_var, n)).results[0]
        v = inner.insert(memref.Load(copies, [slot])).results[0]
        one = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        acc = inner.insert(arith.AddF(v, one)).results[0]
        inner.insert(memref.Store(acc, copies, [slot]))
        inner.insert(scf.Yield())
        deps = loop_carried_dependences(loop)
        assert deps and deps[0].distance == 8
        assert min_initiation_interval(loop) <= 2

    def test_shifted_store_distance_one(self):
        """a[i+1] written, a[i] read -> carried dependence."""
        _, fn, loop, inner = _loop_skeleton([MemRefType(f32, [100])])
        a = fn.body.args[0]
        v = inner.insert(memref.Load(a, [loop.induction_var])).results[0]
        one = inner.insert(arith.Constant.index(1)).results[0]
        next_i = inner.insert(arith.AddI(loop.induction_var, one)).results[0]
        inner.insert(memref.Store(v, a, [next_i]))
        inner.insert(scf.Yield())
        deps = loop_carried_dependences(loop)
        assert deps and deps[0].distance == 1

    def test_store_only_no_dep(self):
        _, fn, loop, inner = _loop_skeleton([MemRefType(f32, [100])])
        a = fn.body.args[0]
        zero = inner.insert(arith.Constant.float(0.0, 32)).results[0]
        inner.insert(memref.Store(zero, a, [loop.induction_var]))
        inner.insert(scf.Yield())
        assert loop_carried_dependences(loop) == []


class TestLatency:
    def test_chain_latency_additive(self):
        _, fn, loop, inner = _loop_skeleton([MemRefType(f32, [100])])
        a = fn.body.args[0]
        v = inner.insert(memref.Load(a, [loop.induction_var])).results[0]
        m = inner.insert(arith.MulF(v, v)).results[0]
        s = inner.insert(arith.AddF(m, v)).results[0]
        inner.insert(memref.Store(s, a, [loop.induction_var]))
        inner.insert(scf.Yield())
        latency = float_chain_latency(loop.regions[0].block)
        expected = (
            DEFAULT_LATENCIES["arith.mulf"] + DEFAULT_LATENCIES["arith.addf"]
        )
        assert latency >= expected

    def test_parallel_chains_take_max(self):
        _, fn, loop, inner = _loop_skeleton([MemRefType(f32, [100])])
        a = fn.body.args[0]
        v = inner.insert(memref.Load(a, [loop.induction_var])).results[0]
        m1 = inner.insert(arith.MulF(v, v)).results[0]
        inner.insert(arith.MulF(v, v))  # second, independent mul
        inner.insert(memref.Store(m1, a, [loop.induction_var]))
        inner.insert(scf.Yield())
        latency = float_chain_latency(loop.regions[0].block)
        # two independent muls: latency of one mul (plus load), not two
        assert latency < 2 * DEFAULT_LATENCIES["arith.mulf"] + 2

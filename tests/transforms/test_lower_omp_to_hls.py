"""Tests for *lower omp loops to HLS*: pipelining, unroll, reductions."""

import numpy as np
import pytest

from repro.dialects import hls
from repro.frontend import compile_to_core
from repro.ir import PassManager, print_op
from repro.pipeline import compile_fortran
from repro.session import KernelOverrides, Session
from repro.transforms import (
    ExtractDeviceModulePass,
    LowerOmpMappedDataPass,
    LowerOmpTargetRegionPass,
    LowerOmpToHlsPass,
    split_host_device,
)


def device_module(source: str, **hls_kwargs):
    module = compile_to_core(source).module
    pm = PassManager(verify_each=True)
    pm.add(
        LowerOmpMappedDataPass(),
        LowerOmpTargetRegionPass(),
        ExtractDeviceModulePass(),
    )
    pm.run(module)
    _, device = split_host_device(module)
    pm2 = PassManager(verify_each=True)
    pm2.add(LowerOmpToHlsPass(**hls_kwargs))
    pm2.run(device)
    return device


class TestListing4Shape:
    def test_simple_parallel_do(self):
        source = """
subroutine k(a, b, c, n)
  integer, intent(in) :: n
  real, intent(in) :: a(n), b(n)
  real, intent(out) :: c(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    c(i) = a(i) + b(i)
  end do
!$omp end target parallel do
end subroutine k
"""
        device = device_module(source)
        text = print_op(device)
        # Listing 4 artifacts
        assert '"hls.axi_protocol"' in text
        assert 'bundle = "gmem0"' in text
        assert 'bundle = "gmem1"' in text
        assert 'bundle = "gmem2"' in text
        assert '"hls.pipeline"' in text
        assert '"scf.for"' in text
        assert "omp." not in text  # all omp lowered away

    def test_pipeline_is_first_loop_op(self):
        source = """
subroutine k(a, n)
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
!$omp end target parallel do
end subroutine k
"""
        device = device_module(source)
        loop = next(op for op in device.walk() if op.name == "scf.for")
        body_names = [op.name for op in loop.regions[0].block.ops]
        pipeline_at = body_names.index("hls.pipeline")
        assert pipeline_at <= 1  # after its II constant at most

    def test_scalar_args_use_axilite(self, saxpy_mini_source):
        device = device_module(saxpy_mini_source)
        interfaces = [
            op for op in device.walk() if isinstance(op, hls.InterfaceOp)
        ]
        bundles = {op.bundle for op in interfaces}
        assert "control" in bundles  # the scalar a and n
        assert "gmem0" in bundles and "gmem1" in bundles


class TestSimdUnroll:
    def test_main_and_remainder_loops(self, saxpy_mini_source):
        device = device_module(saxpy_mini_source)
        loops = [op for op in device.walk() if op.name == "scf.for"]
        assert len(loops) == 2  # main (step=4) + remainder
        unrolls = [op for op in device.walk() if isinstance(op, hls.UnrollOp)]
        assert len(unrolls) == 1 and unrolls[0].factor == 4

    def test_body_replicated(self, saxpy_mini_source):
        device = device_module(saxpy_mini_source)
        loops = [op for op in device.walk() if op.name == "scf.for"]
        main = loops[0]
        mulfs = [
            op for op in main.regions[0].walk() if op.name == "arith.mulf"
        ]
        assert len(mulfs) == 4  # simdlen(4) copies

    @pytest.mark.parametrize("n", [1, 3, 4, 5, 17, 64])
    def test_remainder_correct_for_any_trip_count(self, n):
        """simdlen partial unroll preserves semantics incl. remainders."""
        program = compile_fortran(
            """
subroutine k(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(out) :: y(n)
  integer :: i
!$omp target parallel do simd simdlen(4)
  do i = 1, n
    y(i) = 2.0 * x(i)
  end do
!$omp end target parallel do simd
end subroutine k
"""
        )
        x = np.arange(1, n + 1, dtype=np.float32)
        y = np.zeros(n, dtype=np.float32)
        program.executor().run("k", x, y, np.array(n, np.int32))
        assert np.allclose(y, 2.0 * x)


REDUCTION_SOURCE = """
subroutine sdot(x, y, s, n)
  integer, intent(in) :: n
  real, intent(in) :: x(n), y(n)
  real, intent(out) :: s
  integer :: i
  s = 0.0
!$omp target parallel do reduction(+: s)
  do i = 1, n
    s = s + x(i) * y(i)
  end do
!$omp end target parallel do
end subroutine sdot
"""


class TestReductionRewrite:
    def test_round_robin_copies_allocated(self):
        device = device_module(REDUCTION_SOURCE, reduction_copies=8)
        allocas = [
            op for op in device.walk() if op.name == "memref.alloca"
        ]
        shapes = [op.results[0].type.shape for op in allocas]
        assert (8,) in shapes  # the copy buffer

    def test_periodic_access_pattern(self):
        """Copy accesses go through remsi — the periodic index pattern the
        scheduler credits with distance-N dependences."""
        device = device_module(REDUCTION_SOURCE, reduction_copies=8)
        names = {op.name for op in device.walk()}
        assert "arith.remsi" in names

    def test_combine_after_loop(self):
        device = device_module(REDUCTION_SOURCE, reduction_copies=4)
        kernel = next(op for op in device.walk() if op.name == "func.func")
        top_names = [op.name for op in kernel.body.ops]
        loop_at = top_names.index("scf.for")
        adds_after = [
            n for n in top_names[loop_at + 1 :] if n == "arith.addf"
        ]
        assert len(adds_after) == 4  # one combine per copy

    @pytest.mark.parametrize("ncopies", [1, 2, 8])
    def test_reduction_value_preserved(self, ncopies):
        program = Session(REDUCTION_SOURCE).program(
            KernelOverrides(reduction_copies=ncopies)
        )
        n = 300
        rng = np.random.default_rng(4)
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n).astype(np.float32)
        s = np.zeros((), np.float32)
        program.executor().run("sdot", x, y, s, np.array(n, np.int32))
        expected = float(np.dot(x.astype(np.float64), y.astype(np.float64)))
        assert float(s) == pytest.approx(expected, rel=1e-4)

    @pytest.mark.parametrize(
        "op,identity,combine",
        [("max", "maxval", np.max), ("min", "minval", np.min)],
    )
    def test_minmax_reductions(self, op, identity, combine):
        source = f"""
subroutine extreme(x, s, n)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(out) :: s
  integer :: i
  s = x(1)
!$omp target parallel do reduction({op}: s)
  do i = 1, n
    s = {op}(s, x(i))
  end do
!$omp end target parallel do
end subroutine extreme
"""
        program = Session(source).program(KernelOverrides(reduction_copies=4))
        rng = np.random.default_rng(9)
        x = rng.standard_normal(200).astype(np.float32)
        s = np.zeros((), np.float32)
        program.executor().run("extreme", x, s, np.array(200, np.int32))
        assert float(s) == pytest.approx(float(combine(x)), rel=1e-6)

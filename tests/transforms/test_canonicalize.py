"""Canonicalize / CSE / DCE tests."""

from repro.dialects import arith, builtin, func, memref
from repro.ir import Builder, verify
from repro.ir.types import FunctionType, MemRefType, f32, index
from repro.transforms import CanonicalizePass, CsePass, DcePass


def _fn(result_types=()):
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType([], list(result_types)))
    module.body.add_op(fn)
    return module, fn, Builder.at_end(fn.body)


def names(module):
    return [op.name for op in module.walk()]


class TestConstantFolding:
    def test_fold_addi(self):
        module, fn, b = _fn([index])
        two = b.insert(arith.Constant.index(2)).results[0]
        three = b.insert(arith.Constant.index(3)).results[0]
        s = b.insert(arith.AddI(two, three)).results[0]
        b.insert(func.ReturnOp([s]))
        CanonicalizePass().apply(module)
        verify(module)
        assert "arith.addi" not in names(module)
        const = fn.body.ops[0]
        assert const.attributes["value"].value == 5

    def test_fold_chain(self):
        module, fn, b = _fn([index])
        a = b.insert(arith.Constant.index(10)).results[0]
        c2 = b.insert(arith.Constant.index(2)).results[0]
        m = b.insert(arith.MulI(a, c2)).results[0]
        d = b.insert(arith.DivSI(m, c2)).results[0]
        b.insert(func.ReturnOp([d]))
        CanonicalizePass().apply(module)
        remaining = [n for n in names(module) if n.startswith("arith")]
        assert remaining == ["arith.constant"]

    def test_identity_add_zero(self):
        module, fn, b = _fn([index])
        zero = b.insert(arith.Constant.index(0)).results[0]
        # block the fold path with a non-constant: use a block arg stand-in
        buf = b.insert(memref.Alloca(MemRefType(index, []))).results[0]
        x = b.insert(memref.Load(buf, [])).results[0]
        s = b.insert(arith.AddI(x, zero)).results[0]
        b.insert(func.ReturnOp([s]))
        CanonicalizePass().apply(module)
        assert "arith.addi" not in names(module)

    def test_mul_by_one(self):
        module, fn, b = _fn([index])
        one = b.insert(arith.Constant.index(1)).results[0]
        buf = b.insert(memref.Alloca(MemRefType(index, []))).results[0]
        x = b.insert(memref.Load(buf, [])).results[0]
        m = b.insert(arith.MulI(x, one)).results[0]
        b.insert(func.ReturnOp([m]))
        CanonicalizePass().apply(module)
        assert "arith.muli" not in names(module)

    def test_div_by_zero_not_folded(self):
        module, fn, b = _fn([index])
        a = b.insert(arith.Constant.index(10)).results[0]
        zero = b.insert(arith.Constant.index(0)).results[0]
        d = b.insert(arith.DivSI(a, zero)).results[0]
        b.insert(func.ReturnOp([d]))
        CanonicalizePass().apply(module)
        assert "arith.divsi" in names(module)


class TestDce:
    def test_removes_dead_pure_ops(self):
        module, fn, b = _fn()
        x = b.insert(arith.Constant.index(1)).results[0]
        b.insert(arith.AddI(x, x))  # dead
        b.insert(func.ReturnOp())
        DcePass().apply(module)
        assert "arith.addi" not in names(module)
        assert "arith.constant" not in names(module)  # became dead too

    def test_keeps_side_effecting(self):
        module, fn, b = _fn()
        buf = b.insert(memref.Alloca(MemRefType(f32, []))).results[0]
        v = b.insert(arith.Constant.float(1.0, 32)).results[0]
        b.insert(memref.Store(v, buf, []))
        b.insert(func.ReturnOp())
        DcePass().apply(module)
        assert "memref.store" in names(module)
        assert "arith.constant" in names(module)


class TestCse:
    def test_dedups_identical_pure(self):
        module, fn, b = _fn([index])
        buf = b.insert(memref.Alloca(MemRefType(index, []))).results[0]
        x = b.insert(memref.Load(buf, [])).results[0]
        a1 = b.insert(arith.AddI(x, x)).results[0]
        a2 = b.insert(arith.AddI(x, x)).results[0]
        s = b.insert(arith.AddI(a1, a2)).results[0]
        b.insert(func.ReturnOp([s]))
        CsePass().apply(module)
        verify(module)
        adds = [n for n in names(module) if n == "arith.addi"]
        assert len(adds) == 2  # one of the duplicates removed

    def test_does_not_merge_loads(self):
        """Loads are not pure: a store may intervene."""
        module, fn, b = _fn()
        buf = b.insert(memref.Alloca(MemRefType(f32, []))).results[0]
        l1 = b.insert(memref.Load(buf, [])).results[0]
        v = b.insert(arith.Constant.float(2.0, 32)).results[0]
        b.insert(memref.Store(v, buf, []))
        l2 = b.insert(memref.Load(buf, [])).results[0]
        b.insert(arith.AddF(l1, l2))
        b.insert(func.ReturnOp())
        before = len([n for n in names(module) if n == "memref.load"])
        CsePass().apply(module)
        after = len([n for n in names(module) if n == "memref.load"])
        assert before == after == 2

    def test_different_attrs_not_merged(self):
        module, fn, b = _fn()
        b.insert(arith.Constant.index(1))
        b.insert(arith.Constant.index(2))
        b.insert(func.ReturnOp())
        CsePass().apply(module)
        consts = [n for n in names(module) if n == "arith.constant"]
        assert len(consts) == 2

"""Tests for *lower omp mapped data*: device data ops + ref counting."""

import numpy as np

from repro.frontend import compile_to_core
from repro.ir import PassManager, print_op
from repro.transforms import LowerOmpMappedDataPass, MemorySpacePolicy


def lower(source: str, policy: MemorySpacePolicy | None = None):
    module = compile_to_core(source).module
    pm = PassManager(verify_each=True)
    pm.add(LowerOmpMappedDataPass(policy))
    pm.run(module)
    return module


TARGET_DATA = """
subroutine s(a, n)
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
!$omp target data map(tofrom: a)
!$omp target parallel do
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
!$omp end target parallel do
!$omp end target data
end subroutine s
"""


class TestStructure:
    def test_map_infos_consumed(self, saxpy_mini_source):
        module = lower(saxpy_mini_source)
        names = {op.name for op in module.walk()}
        assert "omp.map_info" not in names
        assert "omp.bounds" not in names

    def test_device_ops_emitted(self, saxpy_mini_source):
        module = lower(saxpy_mini_source)
        names = [op.name for op in module.walk()]
        for expected in (
            "device.alloc",
            "device.lookup",
            "device.data_check_exists",
            "device.data_acquire",
            "device.data_release",
        ):
            assert expected in names, expected

    def test_target_operands_are_device_memrefs(self, saxpy_mini_source):
        module = lower(saxpy_mini_source)
        target = next(op for op in module.walk() if op.name == "omp.target")
        for operand in target.operands:
            assert operand.op.name == "device.lookup"
            assert operand.type.memory_space == 1
        for arg in target.regions[0].block.args:
            assert arg.type.memory_space == 1

    def test_conditional_alloc_and_copy(self, saxpy_mini_source):
        """The paper's implicit-map handling: alloc and the H2D DMA sit
        inside conditionals guarded by device.data_check_exists."""
        module = lower(saxpy_mini_source)
        text = print_op(module)
        assert '"device.data_check_exists"' in text
        # alloc appears inside an scf.if region
        for op in module.walk():
            if op.name == "device.alloc":
                assert op.parent_op.name == "scf.if"
            if op.name == "memref.dma_start":
                assert op.parent_op.name == "scf.if"

    def test_release_after_target(self, saxpy_mini_source):
        module = lower(saxpy_mini_source)
        fn = next(op for op in module.walk() if op.name == "func.func")
        names = [op.name for op in fn.body.ops]
        target_at = names.index("omp.target")
        releases = [i for i, n in enumerate(names) if n == "device.data_release"]
        acquires = [i for i, n in enumerate(names) if n == "device.data_acquire"]
        assert all(i < target_at for i in acquires)
        assert all(i > target_at for i in releases)
        assert len(releases) == len(acquires)

    def test_target_data_region_inlined(self):
        module = lower(TARGET_DATA)
        names = {op.name for op in module.walk()}
        assert "omp.target_data" not in names
        assert "omp.target" in names  # inner offload survives this pass


class TestMemorySpacePolicy:
    def test_single_policy_uses_bank_one(self, saxpy_mini_source):
        module = lower(saxpy_mini_source, MemorySpacePolicy("single"))
        spaces = {
            op.attributes["memory_space"].value
            for op in module.walk()
            if op.name == "device.alloc"
        }
        assert spaces == {1}

    def test_round_robin_spreads_banks(self, saxpy_mini_source):
        module = lower(saxpy_mini_source, MemorySpacePolicy("round_robin"))
        spaces = {
            op.attributes["memory_space"].value
            for op in module.walk()
            if op.name == "device.alloc"
        }
        assert len(spaces) > 1

    def test_policy_stable_per_identifier(self):
        policy = MemorySpacePolicy("round_robin")
        first = policy.space_for("a")
        assert policy.space_for("a") == first
        assert policy.space_for("b") != first


class TestCounterSemanticsEndToEnd:
    """Nested data regions transfer once (paper Listing 1 behaviour)."""

    def test_nested_region_transfers_once(self):
        from repro.pipeline import compile_fortran

        nested = """
subroutine s(a, n)
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
!$omp target data map(tofrom: a)
!$omp target parallel do
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
!$omp end target parallel do
!$omp target parallel do
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
!$omp end target parallel do
!$omp end target data
end subroutine s
"""
        bare = nested.replace(
            "!$omp target data map(tofrom: a)\n", ""
        ).replace("!$omp end target data\n", "")
        n = 1000
        a0 = np.arange(n, dtype=np.float32)

        scoped_prog = compile_fortran(nested)
        a_scoped = a0.copy()
        scoped = scoped_prog.executor().run(
            "s", a_scoped, np.array(n, np.int32)
        )
        bare_prog = compile_fortran(bare)
        a_bare = a0.copy()
        unscoped = bare_prog.executor().run(
            "s", a_bare, np.array(n, np.int32)
        )
        expected = (a0 + 1.0) * 2.0
        assert np.allclose(a_scoped, expected)
        assert np.allclose(a_bare, expected)
        # the data region saves the second round trip of `a`
        assert scoped.bytes_h2d < unscoped.bytes_h2d
        assert scoped.bytes_d2h < unscoped.bytes_d2h

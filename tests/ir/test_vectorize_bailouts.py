"""Reasoned bail-out pinning: every documented scalar fallback class.

The vectorizer's contract is that a loop it declines is *re-run on the
scalar tier with identical results*, and that the decline is a reasoned
DEBUG log on ``repro.ir.vectorize`` — never a silent divergence.  The
classes already pinned in ``test_vectorize.py`` (generic
no-classification, scatter injectivity, iter-args NaN min/max, rank-n
``omp.loop_nest``) are complemented here by the remaining ones:

* memref-accumulator NaN min/max (``try_vectorized_reduction``);
* nest-reduction NaN min/max (single-chunk whole-space path);
* chunked min/max nest exceeding the whole-space size bound;
* a perfect ``scf.for`` chain whose nest plan bails (the ``rank-k
  scf.for nest`` spelling of the reasoned bail).
"""

import logging

import numpy as np

from repro.dialects import arith, builtin, func, memref, omp, scf
from repro.ir import Builder, Interpreter
from repro.ir.types import FunctionType, MemRefType, f32
from repro.ir.vectorize import loop_vector_mode

LOGGER = "repro.ir.vectorize"


def _index_constants(builder, *values):
    return [
        builder.insert(arith.Constant.index(v)).results[0] for v in values
    ]


def _run_both_tiers(build, args_factory, caplog):
    """Run ``build()``'s module on the fast and scalar tiers with
    identical inputs; returns (fast_args, scalar_args, log records)."""
    rng = np.random.default_rng(43)
    fast_args = args_factory(rng)
    scalar_args = [a.copy() for a in fast_args]
    module, _ = build()
    with caplog.at_level(logging.DEBUG, logger=LOGGER):
        Interpreter(module).call("f", *fast_args)
    module_s, _ = build()
    Interpreter(module_s, compiled=False, vectorize=False).call(
        "f", *scalar_args
    )
    return fast_args, scalar_args, caplog.records


def _build_memref_min_reduction(n: int):
    """s[] = min(s[], x[i]) — the memref-accumulator reduction shape."""
    module = builtin.ModuleOp()
    fn = func.FuncOp(
        "f", FunctionType([MemRefType(f32, [n]), MemRefType(f32, [])], [])
    )
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n, 1)
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, s = fn.body.args
    sv = inner.insert(memref.Load(s, [])).results[0]
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    combined = inner.insert(arith.MinF(sv, xv)).results[0]
    inner.insert(memref.Store(combined, s, []))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


def _build_rank2_min_nest(n: int):
    """c[i] = min(c[i], a[i,j]) under a rank-2 nest: an innermost-dim
    min reduction fold (``nest_reduction`` with a min combiner)."""
    module = builtin.ModuleOp()
    mat = MemRefType(f32, [n, n])
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([mat, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n - 1, 1)
    nest = b.insert(omp.LoopNestOp([lb, lb], [ub, ub], [step, step]))
    inner = Builder.at_end(nest.body)
    i, j = nest.body.args
    a_arg, c_arg = fn.body.args
    cv = inner.insert(memref.Load(c_arg, [i])).results[0]
    av = inner.insert(memref.Load(a_arg, [i, j])).results[0]
    folded = inner.insert(arith.MinF(cv, av)).results[0]
    inner.insert(memref.Store(folded, c_arg, [i]))
    inner.insert(omp.YieldOp())
    b.insert(func.ReturnOp())
    return module, nest


class TestMemrefReductionNanBail:
    def test_nan_bail_logged_and_scalar_identical(self, caplog):
        n = 256

        def build():
            return _build_memref_min_reduction(n)

        def args(rng):
            x = rng.standard_normal(n).astype(np.float32)
            x[17] = np.nan
            return [x, np.array(1e5, dtype=np.float32)]

        fast, scalar, records = _run_both_tiers(build, args, caplog)
        assert fast[1].tobytes() == scalar[1].tobytes()
        assert any(
            "bail-out" in r.message and "NaN" in r.message for r in records
        )


class TestNestReductionNanBail:
    def test_nan_bail_logged_and_scalar_identical(self, caplog):
        n = 16  # 256 innermost iterations: above the trip threshold

        def build():
            return _build_rank2_min_nest(n)

        def args(rng):
            a = rng.standard_normal((n, n)).astype(np.float32)
            a[3, 5] = np.nan
            return [a, np.full(n, 1e5, dtype=np.float32)]

        # sanity: without the NaN the nest classifies as a min reduction
        from repro.ir.vectorize import _nest_vector_plan

        _, nest = _build_rank2_min_nest(n)
        mode, plan, _, _ = _nest_vector_plan(nest)
        assert mode == "nest_reduction"
        assert plan.reduction.op_name == "arith.minimumf"

        fast, scalar, records = _run_both_tiers(build, args, caplog)
        assert fast[1].tobytes() == scalar[1].tobytes()
        assert any(
            "bail-out" in r.message and "NaN" in r.message for r in records
        )


class TestChunkedMinMaxSizeBoundBail:
    def test_size_bound_bail_logged_and_scalar_identical(
        self, caplog, monkeypatch
    ):
        """Whole-space min/max needs its NaN check in one pass; when the
        space exceeds the size bound (forced tiny here) the nest must
        take the reasoned size-bound bail, not a chunked partial fold."""
        import repro.ir.vectorize as vectorize

        monkeypatch.setattr(vectorize, "_MAX_NEST_ELEMS", 64)
        n = 16

        def build():
            return _build_rank2_min_nest(n)

        def args(rng):
            return [
                rng.standard_normal((n, n)).astype(np.float32),
                np.full(n, 1e5, dtype=np.float32),
            ]

        fast, scalar, records = _run_both_tiers(build, args, caplog)
        assert fast[1].tobytes() == scalar[1].tobytes()
        assert any(
            "size bound" in r.message and "bail-out" in r.message
            for r in records
        )


class TestScfChainNestBail:
    def test_chain_bail_logged_and_scalar_identical(self, caplog):
        """A perfect scf.for chain whose store couples both IVs bails
        with a reasoned log, then reruns scalar with last-write-wins
        order preserved bit for bit.  Since PR 7 the segmented
        classifier inspects the pair after the whole-space nest path
        gives up, so the recorded reason is its ``segmented nest``
        bail (the coupled store is no per-row accumulator)."""
        n = 16

        def build():
            module = builtin.ModuleOp()
            fn = func.FuncOp(
                "f", FunctionType([MemRefType(f32, [2 * n + 2])], [])
            )
            module.body.add_op(fn)
            b = Builder.at_end(fn.body)
            lb, ub, step = _index_constants(b, 0, n, 1)
            root = b.insert(scf.For(lb, ub, step))
            outer = Builder.at_end(root.body)
            inner_loop = outer.insert(scf.For(lb, ub, step))
            outer.insert(scf.Yield())
            inner = Builder.at_end(inner_loop.body)
            coupled = inner.insert(
                arith.AddI(root.induction_var, inner_loop.induction_var)
            ).results[0]
            as_f = inner.insert(arith.SIToFP(coupled, f32)).results[0]
            inner.insert(memref.Store(as_f, fn.body.args[0], [coupled]))
            inner.insert(scf.Yield())
            b.insert(func.ReturnOp())
            return module, root

        def args(rng):
            return [np.full(2 * n + 2, -1.0, np.float32)]

        fast, scalar, records = _run_both_tiers(build, args, caplog)
        assert fast[0].tobytes() == scalar[0].tobytes()
        assert any(
            "segmented nest" in r.message and "bail-out" in r.message
            for r in records
        )

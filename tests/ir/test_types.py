"""Unit tests for the type system."""

import pytest

from repro.ir.types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    f32,
    f64,
    i1,
    i32,
    index,
    is_float_type,
    is_integer_like,
    is_scalar_type,
)


class TestScalars:
    def test_printing(self):
        assert i32.print() == "i32"
        assert i1.print() == "i1"
        assert f32.print() == "f32"
        assert f64.print() == "f64"
        assert index.print() == "index"
        assert NoneType().print() == "none"

    def test_singletons_equal_fresh(self):
        assert i32 == IntegerType(32)
        assert f64 == FloatType(64)
        assert index == IndexType()

    def test_predicates(self):
        assert is_scalar_type(i32) and is_scalar_type(f32) and is_scalar_type(index)
        assert not is_scalar_type(MemRefType(f32, [4]))
        assert is_float_type(f64) and not is_float_type(i32)
        assert is_integer_like(i32) and is_integer_like(index)
        assert not is_integer_like(f32)


class TestMemRef:
    def test_print_static(self):
        assert MemRefType(f32, [100]).print() == "memref<100xf32>"

    def test_print_2d(self):
        assert MemRefType(f64, [4, 8]).print() == "memref<4x8xf64>"

    def test_print_rank0(self):
        assert MemRefType(f32, []).print() == "memref<f32>"

    def test_print_dynamic(self):
        assert MemRefType(f32, [DYNAMIC]).print() == "memref<?xf32>"

    def test_print_memory_space(self):
        assert (
            MemRefType(f64, [100], 1).print() == "memref<100xf64, 1 : i32>"
        )

    def test_rank_and_static(self):
        ty = MemRefType(f32, [2, DYNAMIC])
        assert ty.rank == 2
        assert not ty.has_static_shape
        assert MemRefType(f32, [2, 3]).has_static_shape

    def test_num_elements(self):
        assert MemRefType(f32, [4, 5]).num_elements() == 20
        assert MemRefType(f32, []).num_elements() == 1

    def test_num_elements_dynamic_raises(self):
        with pytest.raises(ValueError):
            MemRefType(f32, [DYNAMIC]).num_elements()

    def test_with_memory_space(self):
        ty = MemRefType(f32, [8]).with_memory_space(3)
        assert ty.memory_space == 3
        assert ty.shape == (8,)

    def test_equality_includes_space(self):
        assert MemRefType(f32, [8], 1) != MemRefType(f32, [8], 0)
        assert MemRefType(f32, [8], 1) == MemRefType(f32, [8], 1)


class TestFunctionType:
    def test_print_no_results(self):
        assert FunctionType([i32], []).print() == "(i32) -> ()"

    def test_print_single_result(self):
        assert FunctionType([i32, f32], [f32]).print() == "(i32, f32) -> f32"

    def test_print_multi_result(self):
        assert (
            FunctionType([], [i32, f32]).print() == "() -> (i32, f32)"
        )

    def test_tuples(self):
        ft = FunctionType([i32], [f32])
        assert ft.inputs == (i32,)
        assert ft.results == (f32,)

    def test_hashable(self):
        assert len({FunctionType([i32], []), FunctionType([i32], [])}) == 1

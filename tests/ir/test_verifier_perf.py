"""Verifier cost guards.

The operand back-reference check is O(1) per operand (each Use records
its position in the value's use list), so verifying a module is linear
in op count even when one value fans out to thousands of users.  The
pre-PR-9 verifier scanned ``operand.uses`` per operand, which made
high-fanout modules quadratic and ``verify_each=True`` pipelines pay
that at every pass boundary.  These tests pin both properties:
near-linear scaling on a pathological fan-out module, and bounded
``verify_each`` overhead on a real pipeline.
"""

import time

from repro.dialects import arith, builtin, func
from repro.ir import Builder, verify
from repro.ir.pass_manager import PassManager
from repro.ir.types import FunctionType


def fanout_module(n_users: int):
    """One constant consumed by ``n_users`` adds — every operand of every
    add is the same value, so per-operand use-list scans are worst-case."""
    module = builtin.ModuleOp()
    fn = func.FuncOp("fanout", FunctionType([], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    c = b.insert(arith.Constant.index(1))
    for _ in range(n_users):
        b.insert(arith.AddI(c.results[0], c.results[0]))
    b.insert(func.ReturnOp())
    return module


def best_of(runs: int, fn) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_verify_scales_linearly_on_high_fanout():
    small = fanout_module(400)
    large = fanout_module(1600)
    t_small = best_of(3, lambda: verify(small))
    t_large = best_of(3, lambda: verify(large))
    # 4x the ops: linear predicts ~4x, the old quadratic scan ~16x.
    # 8x leaves headroom for timer noise while still failing quadratic.
    assert t_large < 8 * max(t_small, 1e-5), (t_small, t_large)


def test_verify_each_overhead_is_bounded(saxpy_mini_source):
    from repro.session import Session

    pipeline = "canonicalize,cse,canonicalize"
    compiled = Session(saxpy_mini_source).frontend().module

    def run(verify_each):
        PassManager.parse(pipeline, verify_each=verify_each).run(
            compiled.clone()
        )

    baseline = best_of(3, lambda: run(False))
    verified = best_of(3, lambda: run(True))
    # ISSUE bound: verify-at-every-boundary must stay under 2x the
    # unverified pipeline (plus a floor so sub-ms noise cannot fail it).
    assert verified < 2 * baseline + 0.005, (baseline, verified)

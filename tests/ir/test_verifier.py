"""Verifier tests: dominance, terminators, isolation, link integrity."""

import pytest

from repro.dialects import arith, builtin, func, omp, scf
from repro.ir import Builder, VerificationError, verify
from repro.ir.core import IRError
from repro.ir.types import FunctionType, MemRefType, f32, index


def _module_with_func():
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType([], []))
    module.body.add_op(fn)
    return module, fn


class TestDominance:
    def test_use_before_def(self):
        module, fn = _module_with_func()
        c = arith.Constant.index(1)
        add = arith.AddI(c.results[0], c.results[0])
        fn.body.add_op(add)  # add first: uses c before its definition
        fn.body.add_op(c)
        fn.body.add_op(func.ReturnOp())
        with pytest.raises(VerificationError, match="before its definition"):
            verify(module)

    def test_valid_order(self):
        module, fn = _module_with_func()
        b = Builder.at_end(fn.body)
        c = b.insert(arith.Constant.index(1))
        b.insert(arith.AddI(c.results[0], c.results[0]))
        b.insert(func.ReturnOp())
        verify(module)

    def test_nested_region_sees_outer_defs(self, vadd_module):
        verify(vadd_module)  # loop body references function args


class TestTerminators:
    def test_terminator_not_last(self):
        module, fn = _module_with_func()
        fn.body.add_op(func.ReturnOp())
        fn.body.add_op(arith.Constant.index(1))
        with pytest.raises(VerificationError, match="terminator"):
            verify(module)

    def test_scf_for_requires_yield(self):
        module, fn = _module_with_func()
        b = Builder.at_end(fn.body)
        c0 = b.insert(arith.Constant.index(0)).results[0]
        c4 = b.insert(arith.Constant.index(4)).results[0]
        c1 = b.insert(arith.Constant.index(1)).results[0]
        b.insert(scf.For(c0, c4, c1))  # body has no scf.yield
        b.insert(func.ReturnOp())
        with pytest.raises(IRError, match="yield"):
            verify(module)


class TestIsolation:
    def test_omp_target_cannot_capture(self):
        module, fn = _module_with_func()
        b = Builder.at_end(fn.body)
        alloc = b.insert(
            __import__("repro.dialects.memref", fromlist=["Alloca"]).Alloca(
                MemRefType(f32, [4])
            )
        )
        info = b.insert(
            omp.MapInfoOp(alloc.results[0], "x", "tofrom")
        )
        target = b.insert(omp.TargetOp([info.results[0]]))
        inner = Builder.at_end(target.body)
        # illegal: references the host value instead of the block arg
        inner.insert(
            __import__("repro.dialects.memref", fromlist=["Load"]).Load(
                alloc.results[0], [inner.insert(arith.Constant.index(0)).results[0]]
            )
        )
        inner.insert(omp.TerminatorOp())
        b.insert(func.ReturnOp())
        with pytest.raises(VerificationError, match="Isolated"):
            verify(module)

    def test_omp_target_block_args_ok(self):
        module, fn = _module_with_func()
        from repro.dialects import memref

        b = Builder.at_end(fn.body)
        alloc = b.insert(memref.Alloca(MemRefType(f32, [4])))
        info = b.insert(omp.MapInfoOp(alloc.results[0], "x", "tofrom"))
        target = b.insert(omp.TargetOp([info.results[0]]))
        inner = Builder.at_end(target.body)
        idx = inner.insert(arith.Constant.index(0)).results[0]
        inner.insert(memref.Load(target.body.args[0], [idx]))
        inner.insert(omp.TerminatorOp())
        b.insert(func.ReturnOp())
        verify(module)


class TestLinkIntegrity:
    def test_stale_use_record(self):
        module, fn = _module_with_func()
        b = Builder.at_end(fn.body)
        c = b.insert(arith.Constant.index(1))
        b.insert(arith.AddI(c.results[0], c.results[0]))
        b.insert(func.ReturnOp())
        # sabotage: drop a use record behind the verifier's back
        c.results[0].uses.pop()
        with pytest.raises(VerificationError):
            verify(module)

    def test_func_signature_mismatch(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([index], []))
        module.body.add_op(fn)
        fn.body.args[0].type = f32  # break the contract
        fn.body.add_op(func.ReturnOp())
        with pytest.raises(IRError, match="signature"):
            verify(module)

"""Unit tests for the attribute hierarchy."""

import pytest

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    attr_from_python,
)
from repro.ir.types import f32, i32


class TestPrinting:
    def test_integer(self):
        assert IntegerAttr(5, 32).print() == "5 : i32"

    def test_index(self):
        assert IntegerAttr.index(7).print() == "7 : index"

    def test_negative_integer(self):
        assert IntegerAttr.i64(-3).print() == "-3 : i64"

    def test_float(self):
        assert FloatAttr(1.5, 32).print() == "1.5 : f32"

    def test_bool(self):
        assert BoolAttr(True).print() == "true"
        assert BoolAttr(False).print() == "false"

    def test_unit(self):
        assert UnitAttr().print() == "unit"

    def test_string_escaping(self):
        assert StringAttr('a"b').print() == '"a\\"b"'
        assert StringAttr("a\\b").print() == '"a\\\\b"'

    def test_symbol_ref(self):
        assert SymbolRefAttr("my_kernel").print() == "@my_kernel"

    def test_array(self):
        attr = ArrayAttr([IntegerAttr.i32(1), StringAttr("x")])
        assert attr.print() == '[1 : i32, "x"]'

    def test_dense_array(self):
        assert DenseArrayAttr([1, 2, 3]).print() == "array<i64: 1, 2, 3>"

    def test_dense_array_empty(self):
        assert DenseArrayAttr([]).print() == "array<i64>"

    def test_dictionary_sorted(self):
        attr = DictionaryAttr({"b": IntegerAttr.i32(2), "a": IntegerAttr.i32(1)})
        assert attr.print() == "{a = 1 : i32, b = 2 : i32}"

    def test_type_attr(self):
        assert TypeAttr(f32).print() == "f32"


class TestEquality:
    def test_integer_eq(self):
        assert IntegerAttr(5, 32) == IntegerAttr(5, 32)
        assert IntegerAttr(5, 32) != IntegerAttr(5, 64)
        assert IntegerAttr(5, 32) != IntegerAttr(6, 32)

    def test_hashable(self):
        seen = {IntegerAttr(5, 32), IntegerAttr(5, 32), FloatAttr(5.0, 32)}
        assert len(seen) == 2

    def test_array_structural(self):
        assert ArrayAttr([BoolAttr(True)]) == ArrayAttr([BoolAttr(True)])

    def test_dictionary_order_insensitive(self):
        a = DictionaryAttr({"x": BoolAttr(True), "y": BoolAttr(False)})
        b = DictionaryAttr({"y": BoolAttr(False), "x": BoolAttr(True)})
        assert a == b
        assert hash(a) == hash(b)


class TestContainers:
    def test_array_iter_len_getitem(self):
        attr = ArrayAttr([IntegerAttr.i32(i) for i in range(3)])
        assert len(attr) == 3
        assert list(attr)[1] == IntegerAttr.i32(1)
        assert attr[2] == IntegerAttr.i32(2)

    def test_dictionary_access(self):
        attr = DictionaryAttr({"k": StringAttr("v")})
        assert attr["k"] == StringAttr("v")
        assert "k" in attr
        assert "missing" not in attr
        with pytest.raises(KeyError):
            attr["missing"]

    def test_dense_array_iter(self):
        assert list(DenseArrayAttr([4, 5])) == [4, 5]


class TestFromPython:
    def test_bool_before_int(self):
        # bool is a subclass of int; must map to BoolAttr
        assert attr_from_python(True) == BoolAttr(True)

    def test_int(self):
        assert attr_from_python(42) == IntegerAttr.i64(42)

    def test_float(self):
        assert attr_from_python(2.5) == FloatAttr(2.5, 64)

    def test_str(self):
        assert attr_from_python("hi") == StringAttr("hi")

    def test_type(self):
        assert attr_from_python(i32) == TypeAttr(i32)

    def test_list(self):
        assert attr_from_python([1, 2]) == ArrayAttr(
            [IntegerAttr.i64(1), IntegerAttr.i64(2)]
        )

    def test_dict(self):
        assert attr_from_python({"a": 1}) == DictionaryAttr(
            {"a": IntegerAttr.i64(1)}
        )

    def test_unconvertible(self):
        with pytest.raises(TypeError):
            attr_from_python(object())

    def test_attribute_passthrough(self):
        attr = UnitAttr()
        assert attr_from_python(attr) is attr

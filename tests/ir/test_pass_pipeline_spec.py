"""Textual pass-pipeline specs: parse/print round-trips, typed-option
validation errors, and golden specs for the default stage pipelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import ModulePass, PassManager, PassOption, PipelineParseError
from repro.ir.pass_manager import register_pass
from repro.session import KernelOverrides, device_pipeline, host_device_pipeline


@register_pass
class _SpecProbePass(ModulePass):
    """A registered no-op pass exercising every option type."""

    name = "test-spec-probe"
    options = (
        PassOption("factor", int, 1),
        PassOption("fast", bool, False),
        PassOption("mode", str, "plain"),
        PassOption("scale", float, 1.0),
    )

    def __init__(
        self,
        factor: int = 1,
        fast: bool = False,
        mode: str = "plain",
        scale: float = 1.0,
    ):
        self.factor = factor
        self.fast = fast
        self.mode = mode
        self.scale = scale

    def apply(self, module):
        pass


class TestGoldenSpecs:
    """The stage pipelines' textual form is part of the public API."""

    def test_default_device_pipeline(self):
        assert device_pipeline().spec() == "lower-omp-to-hls,canonicalize,cse"

    def test_device_pipeline_with_overrides(self):
        pm = device_pipeline(
            KernelOverrides(simdlen=2, reduction_copies=4, shared_bundle=True)
        )
        assert pm.spec() == (
            "lower-omp-to-hls{reduction_copies=4,shared_bundle=true,"
            "simdlen=2},canonicalize,cse"
        )

    def test_default_host_device_pipeline(self):
        assert host_device_pipeline().spec() == (
            "lower-omp-mapped-data,lower-omp-target-region,"
            "extract-device-module"
        )

    def test_host_device_pipeline_with_policy(self):
        assert host_device_pipeline("round_robin").spec() == (
            "lower-omp-mapped-data{policy=round_robin},"
            "lower-omp-target-region,extract-device-module"
        )

    def test_issue_example_round_trips(self):
        spec = (
            "lower-omp-mapped-data{policy=round_robin},"
            "lower-omp-to-hls{reduction_copies=4},canonicalize,cse"
        )
        pm = PassManager.parse(spec)
        assert pm.spec() == spec
        assert pm.pass_names == [
            "lower-omp-mapped-data", "lower-omp-to-hls",
            "canonicalize", "cse",
        ]

    def test_default_pipelines_round_trip(self):
        for pm in (device_pipeline(), host_device_pipeline()):
            assert PassManager.parse(pm.spec()).spec() == pm.spec()


class TestParsing:
    def test_whitespace_tolerated(self):
        pm = PassManager.parse(
            " test-spec-probe{ factor=3 , fast=true } , canonicalize "
        )
        probe = pm.passes[0]
        assert probe.factor == 3 and probe.fast is True
        assert pm.pass_names == ["test-spec-probe", "canonicalize"]

    def test_typed_values(self):
        probe = PassManager.parse(
            "test-spec-probe{factor=7,fast=false,mode=wide,scale=0.5}"
        ).passes[0]
        assert probe.factor == 7
        assert probe.fast is False
        assert probe.mode == "wide"
        assert probe.scale == 0.5


class TestErrors:
    def test_unknown_pass_names_candidates(self):
        with pytest.raises(PipelineParseError) as err:
            PassManager.parse("no-such-pass")
        assert "no-such-pass" in str(err.value)
        assert "lower-omp-to-hls" in str(err.value)  # lists registered

    def test_unknown_option_names_valid_ones(self):
        with pytest.raises(PipelineParseError) as err:
            PassManager.parse("test-spec-probe{bogus=1}")
        message = str(err.value)
        assert "test-spec-probe" in message and "bogus" in message
        assert "factor" in message  # valid options listed

    def test_bad_int_value(self):
        with pytest.raises(PipelineParseError) as err:
            PassManager.parse("test-spec-probe{factor=banana}")
        assert "int" in str(err.value) and "banana" in str(err.value)

    def test_bad_bool_value(self):
        with pytest.raises(PipelineParseError) as err:
            PassManager.parse("test-spec-probe{fast=maybe}")
        assert "bool" in str(err.value)

    def test_missing_equals(self):
        with pytest.raises(PipelineParseError, match="key=value"):
            PassManager.parse("test-spec-probe{factor}")

    def test_unbalanced_braces(self):
        with pytest.raises(PipelineParseError, match="unbalanced"):
            PassManager.parse("test-spec-probe{factor=1")

    def test_pass_without_options_rejects_any(self):
        with pytest.raises(PipelineParseError, match="<none>"):
            PassManager.parse("canonicalize{x=1}")


# -- property: parse(spec(pm)) is the identity on rendered pipelines -----------

_probe_entries = st.fixed_dictionaries(
    {},
    optional={
        "factor": st.integers(min_value=0, max_value=99),
        "fast": st.booleans(),
        "mode": st.sampled_from(["plain", "wide", "round_robin"]),
    },
)

_hls_entries = st.fixed_dictionaries(
    {},
    optional={
        "reduction_copies": st.integers(min_value=1, max_value=32),
        "simdlen": st.integers(min_value=1, max_value=16),
        "shared_bundle": st.booleans(),
        "target_ii": st.integers(min_value=1, max_value=4),
    },
)


@st.composite
def _pipelines(draw):
    entries = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["probe", "hls", "plain"]))
        if kind == "probe":
            opts = draw(_probe_entries)
            entries.append(("test-spec-probe", opts))
        elif kind == "hls":
            opts = draw(_hls_entries)
            entries.append(("lower-omp-to-hls", opts))
        else:
            entries.append(
                (draw(st.sampled_from(["canonicalize", "cse", "dce"])), {})
            )
    return ",".join(
        name + (
            "{" + ",".join(f"{k}={str(v).lower()}" for k, v in opts.items()) + "}"
            if opts else ""
        )
        for name, opts in entries
    )


@settings(max_examples=60, deadline=None)
@given(_pipelines())
def test_spec_parse_round_trip(spec_text):
    pm = PassManager.parse(spec_text)
    rendered = pm.spec()
    again = PassManager.parse(rendered)
    assert again.spec() == rendered
    assert again.pass_names == pm.pass_names
    # option values survive the round trip
    for a, b in zip(pm.passes, again.passes):
        assert a.option_values() == b.option_values()

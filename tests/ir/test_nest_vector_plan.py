"""Rank-3 nest classification: `_nest_vector_plan` on IR fixtures.

The whole-space nest evaluator has three outcomes — elementwise,
innermost-dim reduction folding, and a *reasoned* bail-out — and each is
pinned here directly on hand-built IR, so a vectorizer regression
surfaces without running full workloads (the gallery's heat3d /
batched_gemm conformance runs exercise the same machinery end to end).
"""

import numpy as np
import pytest

from repro.dialects import arith, builtin, func, memref, omp, scf
from repro.ir import Builder, Interpreter
from repro.ir.types import FunctionType, MemRefType, f32
from repro.ir.vectorize import _nest_vector_plan, loop_vector_mode


def _index_constants(builder, *values):
    return [
        builder.insert(arith.Constant.index(v)).results[0] for v in values
    ]


def _build_rank3_elementwise(n: int):
    """b[i,j,k] = a[i,j,k] + 1.0 under a rank-3 omp.loop_nest."""
    module = builtin.ModuleOp()
    cube = MemRefType(f32, [n, n, n])
    fn = func.FuncOp("f", FunctionType([cube, cube], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n - 1, 1)
    nest = b.insert(
        omp.LoopNestOp([lb, lb, lb], [ub, ub, ub], [step, step, step])
    )
    inner = Builder.at_end(nest.body)
    i, j, k = nest.body.args
    a_arg, b_arg = fn.body.args
    av = inner.insert(memref.Load(a_arg, [i, j, k])).results[0]
    one = inner.insert(arith.Constant.float(1.0, 32)).results[0]
    r = inner.insert(arith.AddF(av, one)).results[0]
    inner.insert(memref.Store(r, b_arg, [i, j, k]))
    inner.insert(omp.YieldOp())
    b.insert(func.ReturnOp())
    return module, nest


def _build_rank3_innermost_reduction(n: int):
    """c[i,j] = c[i,j] + a[i,j,k] under a rank-3 (i, j, k) nest — the
    collapse(3) GEMM shape whose innermost dim is the reduction."""
    module = builtin.ModuleOp()
    cube = MemRefType(f32, [n, n, n])
    mat = MemRefType(f32, [n, n])
    fn = func.FuncOp("f", FunctionType([cube, mat], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n - 1, 1)
    nest = b.insert(
        omp.LoopNestOp([lb, lb, lb], [ub, ub, ub], [step, step, step])
    )
    inner = Builder.at_end(nest.body)
    i, j, k = nest.body.args
    a_arg, c_arg = fn.body.args
    cv = inner.insert(memref.Load(c_arg, [i, j])).results[0]
    av = inner.insert(memref.Load(a_arg, [i, j, k])).results[0]
    acc = inner.insert(arith.AddF(cv, av)).results[0]
    inner.insert(memref.Store(acc, c_arg, [i, j]))
    inner.insert(omp.YieldOp())
    b.insert(func.ReturnOp())
    return module, nest


def _build_scf_chain_elementwise(n: int):
    """A perfect scf.for chain i { j { k { b[i,j,k] = a[i,j,k] * 2 } } }
    — the shape lower-omp-to-hls emits for collapse(3)."""
    module = builtin.ModuleOp()
    cube = MemRefType(f32, [n, n, n])
    fn = func.FuncOp("f", FunctionType([cube, cube], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n, 1)
    root = b.insert(scf.For(lb, ub, step))
    ivs = [root.induction_var]
    builder = Builder.at_end(root.body)
    loops = [root]
    for _ in range(2):
        loop = builder.insert(scf.For(lb, ub, step))
        ivs.append(loop.induction_var)
        builder.insert(scf.Yield())
        builder = Builder.at_end(loop.body)
        loops.append(loop)
    a_arg, b_arg = fn.body.args
    av = builder.insert(memref.Load(a_arg, ivs)).results[0]
    two = builder.insert(arith.Constant.float(2.0, 32)).results[0]
    r = builder.insert(arith.MulF(two, av)).results[0]
    builder.insert(memref.Store(r, b_arg, ivs))
    builder.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, root


class TestClassification:
    def test_rank3_elementwise(self):
        _, nest = _build_rank3_elementwise(8)
        mode, plan, program, reason = _nest_vector_plan(nest)
        assert mode == "nest_elementwise"
        assert reason is None
        assert len(plan.ivs) == 3 and plan.root_dims == 3
        assert plan.reduction is None
        assert program is not None

    def test_rank3_innermost_reduction(self):
        _, nest = _build_rank3_innermost_reduction(8)
        mode, plan, program, reason = _nest_vector_plan(nest)
        assert mode == "nest_reduction"
        assert reason is None
        assert plan.reduction is not None
        assert plan.reduction.op_name == "arith.addf"

    def test_scf_chain_classifies_via_loop_vector_mode(self):
        _, root = _build_scf_chain_elementwise(8)
        mode, plan = loop_vector_mode(root)
        assert mode == "nest_elementwise"
        assert len(plan.ivs) == 3 and plan.root_dims == 1
        assert len(plan.chain) == 2


class TestReasonedBails:
    def test_store_not_covering_every_dim(self):
        """b[i,j] = f(a[i,j,k]) without a reduction chain: the k dim is
        not covered, and repeated writes per (i,j) cell would reorder."""
        n = 8
        module = builtin.ModuleOp()
        cube = MemRefType(f32, [n, n, n])
        mat = MemRefType(f32, [n, n])
        fn = func.FuncOp("f", FunctionType([cube, mat], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb, ub, step = _index_constants(b, 0, n - 1, 1)
        nest = b.insert(
            omp.LoopNestOp([lb, lb, lb], [ub, ub, ub], [step, step, step])
        )
        inner = Builder.at_end(nest.body)
        i, j, k = nest.body.args
        a_arg, c_arg = fn.body.args
        av = inner.insert(memref.Load(a_arg, [i, j, k])).results[0]
        inner.insert(memref.Store(av, c_arg, [i, j]))
        inner.insert(omp.YieldOp())
        b.insert(func.ReturnOp())
        mode, _, _, reason = _nest_vector_plan(nest)
        assert mode is None
        assert reason == "a buffer is both loaded and stored in the nest body" or (
            "cover" in reason
        )

    def test_coupled_store_subscript(self):
        """b[i+j, k, k] couples two IVs in one subscript."""
        n = 8
        module = builtin.ModuleOp()
        cube = MemRefType(f32, [3 * n, n, n])
        fn = func.FuncOp("f", FunctionType([cube], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb, ub, step = _index_constants(b, 0, n - 1, 1)
        nest = b.insert(
            omp.LoopNestOp([lb, lb, lb], [ub, ub, ub], [step, step, step])
        )
        inner = Builder.at_end(nest.body)
        i, j, k = nest.body.args
        coupled = inner.insert(arith.AddI(i, j)).results[0]
        v = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        inner.insert(memref.Store(v, fn.body.args[0], [coupled, k, k]))
        inner.insert(omp.YieldOp())
        b.insert(func.ReturnOp())
        mode, _, _, reason = _nest_vector_plan(nest)
        assert mode is None
        assert reason == "store subscript couples two IVs"

    def test_accumulator_not_covering_outer_dims(self):
        """s[i] = s[i] + a[i,j,k] under an (i, j, k) nest: the j dim is
        uncovered, so two outer points fold into one cell — the plan must
        bail with the coverage reason (the scalar walk stays correct)."""
        n = 8
        module = builtin.ModuleOp()
        cube = MemRefType(f32, [n, n, n])
        vec = MemRefType(f32, [n])
        fn = func.FuncOp("f", FunctionType([cube, vec], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb, ub, step = _index_constants(b, 0, n - 1, 1)
        nest = b.insert(
            omp.LoopNestOp([lb, lb, lb], [ub, ub, ub], [step, step, step])
        )
        inner = Builder.at_end(nest.body)
        i, j, k = nest.body.args
        a_arg, s_arg = fn.body.args
        sv = inner.insert(memref.Load(s_arg, [i])).results[0]
        av = inner.insert(memref.Load(a_arg, [i, j, k])).results[0]
        acc = inner.insert(arith.AddF(sv, av)).results[0]
        inner.insert(memref.Store(acc, s_arg, [i]))
        inner.insert(omp.YieldOp())
        b.insert(func.ReturnOp())
        mode, _, _, reason = _nest_vector_plan(nest)
        assert mode is None
        assert reason == "accumulator subscripts do not cover the outer nest dims"

    def test_chain_bounds_varying_with_outer_iv(self):
        """A triangular chain (inner ub = outer iv) cannot be collapsed
        into one rectangular space."""
        n = 8
        module = builtin.ModuleOp()
        mat = MemRefType(f32, [n, n])
        fn = func.FuncOp("f", FunctionType([mat], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb, ub, step = _index_constants(b, 0, n, 1)
        root = b.insert(scf.For(lb, ub, step))
        outer = Builder.at_end(root.body)
        inner_loop = outer.insert(scf.For(lb, root.induction_var, step))
        outer.insert(scf.Yield())
        inner = Builder.at_end(inner_loop.body)
        v = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        inner.insert(
            memref.Store(
                v, fn.body.args[0],
                [root.induction_var, inner_loop.induction_var],
            )
        )
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        mode, _, _, reason = _nest_vector_plan(root)
        assert mode is None
        assert reason == (
            "nested loop bounds vary with an outer induction variable"
        )

    def test_scaled_reduction_subscript_is_not_invariant(self):
        """c[i, k*m] with a *runtime* (non-constant) scale m: the
        subscript varies along k even though the affine walk sees an
        invariant multiplier with placeholder offset 0 — folding one
        representative cell per outer point would corrupt results, so
        the nest must stay scalar (and the tiers must agree)."""
        n = 8

        def build():
            from repro.ir.types import i32, index

            module = builtin.ModuleOp()
            mat = MemRefType(f32, [n, n * n])
            fn = func.FuncOp(
                "f",
                FunctionType(
                    [MemRefType(f32, [n, n]), mat, MemRefType(i32, [])], []
                ),
            )
            module.body.add_op(fn)
            b = Builder.at_end(fn.body)
            lb, ub, step = _index_constants(b, 1, n - 1, 1)
            nest = b.insert(omp.LoopNestOp([lb, lb], [ub, ub], [step, step]))
            inner = Builder.at_end(nest.body)
            i, k = nest.body.args
            a_arg, c_arg, m_arg = fn.body.args
            mv = inner.insert(memref.Load(m_arg, [])).results[0]
            m_idx = inner.insert(arith.IndexCast(mv, index)).results[0]
            scaled = inner.insert(arith.MulI(k, m_idx)).results[0]
            cv = inner.insert(memref.Load(c_arg, [i, scaled])).results[0]
            av = inner.insert(memref.Load(a_arg, [i, k])).results[0]
            acc = inner.insert(arith.AddF(cv, av)).results[0]
            inner.insert(memref.Store(acc, c_arg, [i, scaled]))
            inner.insert(omp.YieldOp())
            b.insert(func.ReturnOp())
            return module, nest

        module, nest = build()
        mode, _, _, reason = _nest_vector_plan(nest)
        assert mode is None, (mode, reason)

        rng = np.random.default_rng(71)
        a = rng.standard_normal((n, n)).astype(np.float32)
        c0 = np.zeros((n, n * n), dtype=np.float32)
        outs = []
        for vectorize in (False, True):
            mod, _ = build()
            c = c0.copy()
            Interpreter(mod, compiled=False, vectorize=vectorize).call(
                "f", a.copy(), c, np.array(1, np.int32)
            )
            outs.append(c.tobytes())
        assert outs[0] == outs[1]

    def test_nested_region_in_body(self):
        """An scf.if inside the innermost body keeps the nest scalar."""
        n = 8
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb, ub, step = _index_constants(b, 0, n - 1, 1)
        nest = b.insert(omp.LoopNestOp([lb, lb], [ub, ub], [step, step]))
        inner = Builder.at_end(nest.body)
        cond = inner.insert(arith.Constant.bool(True)).results[0]
        if_op = inner.insert(scf.If(cond))
        Builder.at_end(if_op.then_block).insert(scf.Yield())
        Builder.at_end(if_op.else_block).insert(scf.Yield())
        inner.insert(omp.YieldOp())
        b.insert(func.ReturnOp())
        mode, _, _, reason = _nest_vector_plan(nest)
        assert mode is None
        assert reason == "body has nested regions or unsupported ops"


class TestRuntimeEquivalence:
    """The classified fast paths must match the scalar walk bit for bit
    *and* in step accounting (the conformance suite's contract)."""

    @pytest.mark.parametrize(
        "build, out_pos",
        [
            (_build_rank3_elementwise, 1),
            (_build_rank3_innermost_reduction, 1),
            (_build_scf_chain_elementwise, 1),
        ],
    )
    def test_bit_identical_and_same_steps(self, build, out_pos):
        n = 6  # 216 innermost iterations >= the 64-trip threshold
        rng = np.random.default_rng(61)
        outs = []
        steps = []
        for vectorize in (False, True):
            module, _ = build(n)
            fn_args = []
            for arg in module.body.first_op.body.args:
                shape = tuple(
                    dim for dim in arg.type.shape
                )
                fn_args.append(
                    rng.standard_normal(shape).astype(np.float32)
                    if not outs
                    else first_args[len(fn_args)].copy()
                )
            if not outs:
                first_args = [a.copy() for a in fn_args]
            interp = Interpreter(module, compiled=False, vectorize=vectorize)
            interp.call("f", *fn_args)
            outs.append(fn_args[out_pos].tobytes())
            steps.append(interp.steps)
        assert outs[0] == outs[1]
        assert steps[0] == steps[1]

    def test_zero_trip_nest_skips_faulting_chain_bounds(self):
        """A chain whose inner bound divides by a runtime value must not
        evaluate that bound when the outer loop runs zero trips — the
        scalar walk never reaches it, so the fast path may not fault
        (here: divsi by 0) where the scalar tier completes."""
        from repro.ir.types import i32, index

        n = 8
        module = builtin.ModuleOp()
        mat = MemRefType(f32, [n, n])
        fn = func.FuncOp(
            "f", FunctionType([mat, MemRefType(i32, [])], [])
        )
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb, ub, step = _index_constants(b, 0, n, 1)
        root = b.insert(scf.For(lb, lb, step))  # ub == lb: zero trips
        outer = Builder.at_end(root.body)
        d_arg = fn.body.args[1]
        dv = outer.insert(memref.Load(d_arg, [])).results[0]
        d_idx = outer.insert(arith.IndexCast(dv, index)).results[0]
        inner_ub = outer.insert(arith.DivSI(ub, d_idx)).results[0]
        inner_loop = outer.insert(scf.For(lb, inner_ub, step))
        outer.insert(scf.Yield())
        inner = Builder.at_end(inner_loop.body)
        v = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        inner.insert(
            memref.Store(
                v, fn.body.args[0],
                [root.induction_var, inner_loop.induction_var],
            )
        )
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())

        mode, plan = loop_vector_mode(root)
        assert mode == "nest_elementwise"
        assert plan.prelude[0]  # the divide sits in a level prelude
        out = np.zeros((n, n), np.float32)
        # divisor 0: the scalar walk completes (zero outer trips); the
        # vectorized tier must too, instead of faulting in the prelude
        for vectorize in (False, True):
            interp = Interpreter(module, compiled=False, vectorize=vectorize)
            interp.call("f", out, np.array(0, np.int32))
        assert not out.any()

    def test_reduction_fold_matches_numpy_order(self):
        """The innermost-dim fold accumulates k strictly in order per
        (i, j) cell — bit-exact against the sequential NumPy fold."""
        n = 6  # inclusive ub n-1: the nest covers the full 0..n-1 cube
        module, _ = _build_rank3_innermost_reduction(n)
        rng = np.random.default_rng(67)
        a = rng.standard_normal((n, n, n)).astype(np.float32)
        c = rng.standard_normal((n, n)).astype(np.float32)
        expected = c.copy()
        for k in range(n):
            expected = expected + a[:, :, k]
        out = c.copy()
        Interpreter(module).call("f", a.copy(), out)
        assert out.tobytes() == expected.tobytes()


def _build_rank2_scatter(n: int):
    """out[perm[i], j] = 2 * a[i,j]: one store dimension picked through
    an index array — vectorizable only under the nest-level runtime
    injectivity proof (PR 4's per-store lattice lifted to rank 2)."""
    from repro.ir.types import i32, index

    module = builtin.ModuleOp()
    mat = MemRefType(f32, [n, n])
    perm_ty = MemRefType(i32, [n])
    fn = func.FuncOp("f", FunctionType([mat, perm_ty, mat], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n - 1, 1)
    nest = b.insert(omp.LoopNestOp([lb, lb], [ub, ub], [step, step]))
    inner = Builder.at_end(nest.body)
    i, j = nest.body.args
    a_arg, perm_arg, out_arg = fn.body.args
    pv = inner.insert(memref.Load(perm_arg, [i])).results[0]
    pi = inner.insert(arith.IndexCast(pv, index)).results[0]
    av = inner.insert(memref.Load(a_arg, [i, j])).results[0]
    two = inner.insert(arith.Constant.float(2.0, 32)).results[0]
    scaled = inner.insert(arith.MulF(two, av)).results[0]
    inner.insert(memref.Store(scaled, out_arg, [pi, j]))
    inner.insert(omp.YieldOp())
    b.insert(func.ReturnOp())
    return module, nest


class TestNestScatter:
    def test_classifies_nest_scatter(self):
        _, nest = _build_rank2_scatter(16)
        mode, plan, program, reason = _nest_vector_plan(nest)
        assert mode == "nest_scatter"
        assert reason is None
        assert plan.scatter is not None

    def test_permutation_rows_bit_identical(self):
        n = 16
        module, _ = _build_rank2_scatter(n)
        rng = np.random.default_rng(29)
        a = rng.standard_normal((n, n)).astype(np.float32)
        perm = rng.permutation(n).astype(np.int32)
        out_vec = np.zeros((n, n), np.float32)
        out_scalar = np.zeros((n, n), np.float32)
        Interpreter(module).call("f", a.copy(), perm, out_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", a.copy(), perm, out_scalar
        )
        assert out_vec.tobytes() == out_scalar.tobytes()
        expected = np.zeros((n, n), np.float32)
        expected[perm] = (np.float32(2.0) * a).astype(np.float32)
        assert np.array_equal(out_vec, expected)

    def test_colliding_rows_bail_and_match_scalar(self, caplog):
        """Duplicate target rows fail the tuple-injectivity proof: the
        nest logs the reasoned bail, reruns scalar, and keeps the
        last-write-wins bits."""
        import logging

        n = 16
        module, _ = _build_rank2_scatter(n)
        rng = np.random.default_rng(31)
        a = rng.standard_normal((n, n)).astype(np.float32)
        perm = rng.integers(0, 4, n).astype(np.int32)  # heavy collisions
        out_vec = np.zeros((n, n), np.float32)
        out_scalar = np.zeros((n, n), np.float32)
        with caplog.at_level(logging.DEBUG, logger="repro.ir.vectorize"):
            Interpreter(module).call("f", a.copy(), perm, out_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", a.copy(), perm, out_scalar
        )
        assert out_vec.tobytes() == out_scalar.tobytes()
        assert any("injectivity" in r.message for r in caplog.records)

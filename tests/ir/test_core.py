"""Unit tests for the core IR structures (def-use, erasure, cloning...)."""

import pytest

from repro.dialects import arith, builtin, func, scf
from repro.ir import Block, Builder, IRError, Region, default_context
from repro.ir.core import ops_topologically_sorted
from repro.ir.types import FunctionType, index, f32


def _two_constants():
    block = Block()
    a = block.add_op(arith.Constant.index(1))
    b = block.add_op(arith.Constant.index(2))
    return block, a, b


class TestDefUse:
    def test_operand_records_use(self):
        block, a, _ = _two_constants()
        add = block.add_op(arith.AddI(a.results[0], a.results[0]))
        assert len(a.results[0].uses) == 2
        assert all(u.operation is add for u in a.results[0].uses)

    def test_replace_by(self):
        block, a, b = _two_constants()
        add = block.add_op(arith.AddI(a.results[0], a.results[0]))
        a.results[0].replace_by(b.results[0])
        assert not a.results[0].has_uses
        assert add.operands == (b.results[0], b.results[0])
        assert len(b.results[0].uses) == 2

    def test_replace_by_self_is_noop(self):
        block, a, _ = _two_constants()
        block.add_op(arith.AddI(a.results[0], a.results[0]))
        a.results[0].replace_by(a.results[0])
        assert len(a.results[0].uses) == 2

    def test_set_operand(self):
        block, a, b = _two_constants()
        add = block.add_op(arith.AddI(a.results[0], a.results[0]))
        add.set_operand(1, b.results[0])
        assert add.operands[1] is b.results[0]
        assert len(a.results[0].uses) == 1
        assert len(b.results[0].uses) == 1

    def test_single_use(self):
        block, a, b = _two_constants()
        add = block.add_op(arith.AddI(a.results[0], b.results[0]))
        assert a.results[0].single_use.operation is add
        block.add_op(arith.AddI(a.results[0], b.results[0]))
        assert a.results[0].single_use is None


class TestErasure:
    def test_erase_with_uses_raises(self):
        block, a, _ = _two_constants()
        block.add_op(arith.AddI(a.results[0], a.results[0]))
        with pytest.raises(IRError):
            a.erase()

    def test_erase_unsafe(self):
        block, a, _ = _two_constants()
        add = block.add_op(arith.AddI(a.results[0], a.results[0]))
        add.erase()
        a.erase()
        assert a not in block.ops

    def test_erase_drops_operand_uses(self):
        block, a, b = _two_constants()
        add = block.add_op(arith.AddI(a.results[0], b.results[0]))
        add.erase()
        assert not a.results[0].has_uses
        assert not b.results[0].has_uses

    def test_detach_keeps_op_alive(self):
        block, a, _ = _two_constants()
        a.detach()
        assert a.parent is None
        assert a not in block.ops
        assert a.results[0].type == index


class TestStructure:
    def test_parent_links(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        assert fn.parent is module.body
        assert fn.parent_op is module

    def test_get_parent_of_type(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        c = b.insert(arith.Constant.index(0))
        assert c.get_parent_of_type(func.FuncOp) is fn
        assert c.get_parent_of_type(builtin.ModuleOp) is module

    def test_is_ancestor_of(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        c = Builder.at_end(fn.body).insert(arith.Constant.index(0))
        assert module.is_ancestor_of(c)
        assert not c.is_ancestor_of(module)

    def test_add_attached_block_raises(self):
        region = Region([Block()])
        with pytest.raises(IRError):
            Region([region.block])

    def test_region_single_block_accessor(self):
        region = Region([Block(), Block()])
        with pytest.raises(IRError):
            region.block

    def test_insert_before_after(self):
        block, a, b = _two_constants()
        c = arith.Constant.index(3)
        block.insert_op_before(c, b)
        assert block.ops == [a, c, b]
        d = arith.Constant.index(4)
        block.insert_op_after(d, a)
        assert block.ops == [a, d, c, b]

    def test_block_args(self):
        block = Block([index, f32])
        assert [a.type for a in block.args] == [index, f32]
        arg = block.add_arg(index)
        assert arg.index == 2
        block.erase_arg(arg)
        assert len(block.args) == 2


class TestWalk:
    def test_walk_preorder(self, vadd_module):
        names = [op.name for op in vadd_module.walk()]
        assert names[0] == "builtin.module"
        assert names[1] == "func.func"
        assert "scf.for" in names
        assert names.index("scf.for") < names.index("memref.store")

    def test_walk_reverse(self, vadd_module):
        forward = [op.name for op in vadd_module.walk()]
        backward = [op.name for op in vadd_module.walk(reverse=True)]
        # reverse visits nested ops in reverse order within a parent;
        # first element is still the root (pre-order)
        assert backward[0] == "builtin.module"
        assert set(forward) == set(backward)

    def test_walk_type(self, vadd_module):
        fors = list(vadd_module.walk_type(scf.For))
        assert len(fors) == 1


class TestClone:
    def test_clone_remaps_internal_values(self, vadd_module):
        clone = vadd_module.clone()
        originals = set(id(op) for op in vadd_module.walk())
        for op in clone.walk():
            assert id(op) not in originals
            for operand in op.operands:
                owner = operand.owner_block()
                assert owner is not None

    def test_clone_preserves_semantics(self, vadd_module):
        import numpy as np

        from repro.ir import Interpreter, verify

        clone = vadd_module.clone()
        verify(clone)
        x = np.arange(16, dtype=np.float32)
        y = np.ones(16, dtype=np.float32)
        Interpreter(clone).call("vadd", x, y)
        assert np.allclose(y, np.arange(16) + 1)

    def test_clone_keeps_external_operands(self):
        block = Block()
        c = block.add_op(arith.Constant.index(1))
        add = block.add_op(arith.AddI(c.results[0], c.results[0]))
        clone = add.clone()
        assert clone.operands[0] is c.results[0]


class TestContext:
    def test_default_context_registers_all(self):
        ctx = default_context()
        for name in ("builtin.module", "arith.addf", "scf.for",
                     "memref.load", "omp.target", "device.alloc",
                     "hls.pipeline", "fir.do_loop"):
            assert ctx.get_op(name) is not None

    def test_unknown_op(self):
        assert default_context().get_op("nope.nope") is None


class TestTopologicalSort:
    def test_already_sorted(self):
        block, a, b = _two_constants()
        block.add_op(arith.AddI(a.results[0], b.results[0]))
        assert ops_topologically_sorted(block) == block.ops

    def test_detects_order(self):
        block = Block()
        a = arith.Constant.index(1)
        block.add_op(a)
        add = arith.AddI(a.results[0], a.results[0])
        b = arith.Constant.index(2)
        # deliberately out of order: add uses a (ok), then b unused
        block.add_op(add)
        block.add_op(b)
        order = ops_topologically_sorted(block)
        assert order.index(a) < order.index(add)

"""Interpreter semantics tests across core dialects."""

import numpy as np
import pytest

from repro.dialects import arith, builtin, func, math as math_d, memref, scf
from repro.ir import Builder, Interpreter, InterpreterError, Region, Block
from repro.ir.types import FunctionType, MemRefType, f32, f64, i32, index


def build_fn(arg_types, result_types, populate):
    """Helper: module with one function; populate(builder, args) -> values
    to return."""
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType(arg_types, result_types))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    results = populate(b, fn.body.args)
    b.insert(func.ReturnOp(results))
    return module


def call(module, *args):
    return Interpreter(module).call("f", *args)


class TestArith:
    def test_int_arith(self):
        def populate(b, args):
            x, y = args
            s = b.insert(arith.AddI(x, y)).results[0]
            d = b.insert(arith.SubI(s, y)).results[0]
            m = b.insert(arith.MulI(d, y)).results[0]
            return [m]

        module = build_fn([i32, i32], [i32], populate)
        assert call(module, 7, 3) == (21,)

    def test_divsi_truncates_toward_zero(self):
        def populate(b, args):
            return [b.insert(arith.DivSI(args[0], args[1])).results[0]]

        module = build_fn([i32, i32], [i32], populate)
        assert call(module, 7, 2) == (3,)
        assert call(module, -7, 2) == (-3,)  # trunc, not floor

    def test_float32_rounding(self):
        """f32 ops round to float32 precision like real hardware."""

        def populate(b, args):
            return [b.insert(arith.AddF(args[0], args[1])).results[0]]

        module = build_fn([f32, f32], [f32], populate)
        (result,) = call(module, np.float32(1e8), np.float32(1.0))
        assert result == np.float32(1e8)  # 1.0 lost in f32

    def test_cmp_and_select(self):
        def populate(b, args):
            cond = b.insert(arith.CmpI("slt", args[0], args[1])).results[0]
            return [b.insert(arith.Select(cond, args[0], args[1])).results[0]]

        module = build_fn([i32, i32], [i32], populate)
        assert call(module, 2, 9) == (2,)
        assert call(module, 9, 2) == (2,)

    def test_casts(self):
        def populate(b, args):
            as_float = b.insert(arith.SIToFP(args[0], f64)).results[0]
            back = b.insert(arith.FPToSI(as_float, i32)).results[0]
            return [back]

        module = build_fn([i32], [i32], populate)
        assert call(module, -42) == (-42,)

    def test_minmax(self):
        def populate(b, args):
            lo = b.insert(arith.MinSI(args[0], args[1])).results[0]
            hi = b.insert(arith.MaxSI(args[0], args[1])).results[0]
            return [lo, hi]

        module = build_fn([i32, i32], [i32, i32], populate)
        assert call(module, 4, -4) == (-4, 4)


class TestMath:
    @pytest.mark.parametrize(
        "cls,arg,expected",
        [
            (math_d.Sqrt, 9.0, 3.0),
            (math_d.Absf, -2.5, 2.5),
            (math_d.Exp, 0.0, 1.0),
            (math_d.Log, 1.0, 0.0),
        ],
    )
    def test_unary(self, cls, arg, expected):
        def populate(b, args):
            return [b.insert(cls(args[0])).results[0]]

        module = build_fn([f64], [f64], populate)
        assert call(module, arg) == (pytest.approx(expected),)

    def test_powf(self):
        def populate(b, args):
            return [b.insert(math_d.Powf(args[0], args[1])).results[0]]

        module = build_fn([f64, f64], [f64], populate)
        assert call(module, 2.0, 10.0) == (pytest.approx(1024.0),)


class TestScf:
    def test_for_with_iter_args(self):
        """sum 0..9 via loop-carried value."""

        def populate(b, args):
            lb = b.insert(arith.Constant.index(0)).results[0]
            ub = b.insert(arith.Constant.index(10)).results[0]
            step = b.insert(arith.Constant.index(1)).results[0]
            init = b.insert(arith.Constant.index(0)).results[0]
            loop = b.insert(scf.For(lb, ub, step, [init]))
            inner = Builder.at_end(loop.body)
            acc = loop.body.args[1]
            new = inner.insert(arith.AddI(acc, loop.induction_var)).results[0]
            inner.insert(scf.Yield([new]))
            return [loop.results[0]]

        module = build_fn([], [index], populate)
        assert call(module) == (45,)

    def test_if_yields(self):
        def populate(b, args):
            cond = b.insert(
                arith.CmpI("sgt", args[0], args[1])
            ).results[0]
            if_op = b.insert(scf.If(cond, [i32]))
            Builder.at_end(if_op.then_block).insert(scf.Yield([args[0]]))
            Builder.at_end(if_op.else_block).insert(scf.Yield([args[1]]))
            return [if_op.results[0]]

        module = build_fn([i32, i32], [i32], populate)
        assert call(module, 3, 8) == (8,)
        assert call(module, 9, 1) == (9,)

    def test_while(self):
        """count doublings until >= 100."""

        def populate(b, args):
            one = b.insert(arith.Constant.int(1, 32)).results[0]
            hundred = b.insert(arith.Constant.int(100, 32)).results[0]
            before = Region([Block([i32])])
            bb = Builder.at_end(before.block)
            cond = bb.insert(
                arith.CmpI("slt", before.block.args[0], hundred)
            ).results[0]
            bb.insert(scf.Condition(cond, [before.block.args[0]]))
            after = Region([Block([i32])])
            ab = Builder.at_end(after.block)
            doubled = ab.insert(
                arith.AddI(after.block.args[0], after.block.args[0])
            ).results[0]
            ab.insert(scf.Yield([doubled]))
            loop = b.insert(scf.While([one], [i32], before, after))
            return [loop.results[0]]

        module = build_fn([], [i32], populate)
        assert call(module) == (128,)

    def test_empty_trip_count(self):
        def populate(b, args):
            lb = b.insert(arith.Constant.index(5)).results[0]
            ub = b.insert(arith.Constant.index(5)).results[0]
            step = b.insert(arith.Constant.index(1)).results[0]
            loop = b.insert(scf.For(lb, ub, step))
            Builder.at_end(loop.body).insert(scf.Yield())
            return []

        module = build_fn([], [], populate)
        call(module)  # must not loop


class TestMemref:
    def test_alloc_load_store(self):
        def populate(b, args):
            buf = b.insert(memref.Alloca(MemRefType(f32, [4]))).results[0]
            idx = b.insert(arith.Constant.index(2)).results[0]
            val = b.insert(arith.Constant.float(6.5, 32)).results[0]
            b.insert(memref.Store(val, buf, [idx]))
            return [b.insert(memref.Load(buf, [idx])).results[0]]

        module = build_fn([], [f32], populate)
        assert call(module) == (pytest.approx(6.5),)

    def test_rank0(self):
        def populate(b, args):
            cell = b.insert(memref.Alloca(MemRefType(i32, []))).results[0]
            v = b.insert(arith.Constant.int(11, 32)).results[0]
            b.insert(memref.Store(v, cell, []))
            return [b.insert(memref.Load(cell, [])).results[0]]

        module = build_fn([], [i32], populate)
        assert call(module) == (11,)

    def test_dim_and_copy(self):
        def populate(b, args):
            (src,) = args
            zero = b.insert(arith.Constant.index(0)).results[0]
            dim = b.insert(memref.Dim(src, zero)).results[0]
            dst = b.insert(memref.Alloca(MemRefType(f32, [3]))).results[0]
            b.insert(memref.Copy(src, dst))
            idx = b.insert(arith.Constant.index(1)).results[0]
            val = b.insert(memref.Load(dst, [idx])).results[0]
            return [dim, val]

        module = build_fn([MemRefType(f32, [3])], [index, f32], populate)
        dim, val = call(module, np.array([1.0, 2.0, 3.0], dtype=np.float32))
        assert dim == 3 and val == pytest.approx(2.0)

    def test_dma_copies(self):
        def populate(b, args):
            src, dst = args
            tag = b.insert(memref.DmaStart(src, dst)).results[0]
            b.insert(memref.DmaWait(tag))
            return []

        module = build_fn(
            [MemRefType(f32, [4]), MemRefType(f32, [4], 1)], [], populate
        )
        src = np.arange(4, dtype=np.float32)
        dst = np.zeros(4, dtype=np.float32)
        call(module, src, dst)
        assert np.allclose(dst, src)


class TestFunctions:
    def test_call_chain(self):
        module = builtin.ModuleOp()
        callee = func.FuncOp("double", FunctionType([i32], [i32]))
        module.body.add_op(callee)
        cb = Builder.at_end(callee.body)
        doubled = cb.insert(
            arith.AddI(callee.body.args[0], callee.body.args[0])
        ).results[0]
        cb.insert(func.ReturnOp([doubled]))
        caller = func.FuncOp("f", FunctionType([i32], [i32]))
        module.body.add_op(caller)
        b = Builder.at_end(caller.body)
        r = b.insert(func.CallOp("double", [caller.body.args[0]], [i32]))
        b.insert(func.ReturnOp([r.results[0]]))
        assert Interpreter(module).call("f", 21) == (42,)

    def test_missing_function(self):
        module = builtin.ModuleOp()
        with pytest.raises(InterpreterError, match="no function"):
            Interpreter(module).call("ghost")

    def test_wrong_arity(self, vadd_module):
        with pytest.raises(InterpreterError, match="arguments"):
            Interpreter(vadd_module).call("vadd", np.zeros(16, np.float32))

    def test_missing_impl(self):
        from repro.ir.core import UnregisteredOp

        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        fn.body.add_op(UnregisteredOp("mystery.op"))
        fn.body.add_op(func.ReturnOp())
        with pytest.raises(InterpreterError, match="no interpreter impl"):
            Interpreter(module).call("f")

    def test_step_limit(self, vadd_module):
        interp = Interpreter(vadd_module, max_steps=10)
        with pytest.raises(InterpreterError, match="step limit"):
            interp.call(
                "vadd",
                np.zeros(16, np.float32),
                np.zeros(16, np.float32),
            )

"""Segmented (triangular / CSR) nest classification and runtime pins.

PR 7's tentpole: imperfect outer-inner pairs whose inner trip count is
affine in the outer IV (triangular ``j = i+1 .. n``) or loaded from a
monotone offset array (CSR row loops) classify ``nest_segmented`` and
evaluate whole-space via prefix-sum index construction — with the
offset-array contract *proved at runtime* (shuffled offsets log a
reasoned bail and rerun on the always-correct scalar tier).
"""

import logging

import numpy as np
import pytest

from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder, Interpreter
from repro.ir.types import FunctionType, MemRefType, f32, i32, index
from repro.ir.vectorize import loop_vector_mode


def _index_constants(builder, *values):
    return [
        builder.insert(arith.Constant.index(v)).results[0] for v in values
    ]


def _build_triangular(n: int):
    """y[i] = sum_{j=i+1..n} a[i,j]: inner lower bound affine in i."""
    module = builtin.ModuleOp()
    mat = MemRefType(f32, [n, n])
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([mat, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n, 1)
    outer = b.insert(scf.For(lb, ub, step))
    i = outer.induction_var
    ob = Builder.at_end(outer.body)
    one = ob.insert(arith.Constant.index(1)).results[0]
    j_lb = ob.insert(arith.AddI(i, one)).results[0]
    inner = ob.insert(scf.For(j_lb, ub, step))
    j = inner.induction_var
    ib = Builder.at_end(inner.body)
    a_arg, y_arg = fn.body.args
    yv = ib.insert(memref.Load(y_arg, [i])).results[0]
    av = ib.insert(memref.Load(a_arg, [i, j])).results[0]
    acc = ib.insert(arith.AddF(yv, av)).results[0]
    ib.insert(memref.Store(acc, y_arg, [i]))
    ib.insert(scf.Yield())
    ob.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, outer


def _build_csr(n: int):
    """y[i] = sum_{j=ptr[i]..ptr[i+1]} vals[j]: CSR row-offset bounds."""
    module = builtin.ModuleOp()
    ptr_ty = MemRefType(i32, [n + 1])
    vals_ty = MemRefType(f32, [8 * n])
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([ptr_ty, vals_ty, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb, ub, step = _index_constants(b, 0, n, 1)
    outer = b.insert(scf.For(lb, ub, step))
    i = outer.induction_var
    ob = Builder.at_end(outer.body)
    ptr_arg, vals_arg, y_arg = fn.body.args
    one = ob.insert(arith.Constant.index(1)).results[0]
    i1 = ob.insert(arith.AddI(i, one)).results[0]
    start_i = ob.insert(memref.Load(ptr_arg, [i])).results[0]
    end_i = ob.insert(memref.Load(ptr_arg, [i1])).results[0]
    start = ob.insert(arith.IndexCast(start_i, index)).results[0]
    end = ob.insert(arith.IndexCast(end_i, index)).results[0]
    inner = ob.insert(scf.For(start, end, step))
    j = inner.induction_var
    ib = Builder.at_end(inner.body)
    yv = ib.insert(memref.Load(y_arg, [i])).results[0]
    vv = ib.insert(memref.Load(vals_arg, [j])).results[0]
    acc = ib.insert(arith.AddF(yv, vv)).results[0]
    ib.insert(memref.Store(acc, y_arg, [i]))
    ib.insert(scf.Yield())
    ob.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, outer


def _csr_inputs(n: int, rng, *, shuffled: bool = False):
    counts = rng.integers(0, 8, n)
    ptr = np.zeros(n + 1, np.int32)
    np.cumsum(counts, out=ptr[1:])
    if shuffled:
        # swap two interior offsets: ptr is no longer monotone, but every
        # [ptr[i], ptr[i+1]) with ptr[i] <= ptr[i+1] still indexes vals
        # validly (rows with ptr[i] > ptr[i+1] are zero-trip)
        ptr[n // 2], ptr[n // 2 + 1] = ptr[n // 2 + 1], ptr[n // 2]
    vals = rng.standard_normal(8 * n).astype(np.float32)
    return ptr, vals


class TestClassification:
    def test_triangular_classifies_segmented(self):
        _, outer = _build_triangular(64)
        mode, plan = loop_vector_mode(outer)
        assert mode == "nest_segmented"
        # affine bounds need no runtime offset proof
        assert plan.needs_monotone == ()

    def test_csr_offsets_classify_segmented_with_monotone_proof(self):
        _, outer = _build_csr(64)
        mode, plan = loop_vector_mode(outer)
        assert mode == "nest_segmented"
        # both bounds are loaded from an offset array: runtime-proved
        assert set(plan.needs_monotone) == {"lb", "ub"}


class TestRuntimeEquivalence:
    def test_triangular_bit_identical_and_same_steps(self):
        n = 32
        rng = np.random.default_rng(11)
        a = rng.standard_normal((n, n)).astype(np.float32)
        outs = []
        steps = []
        for vectorize in (False, True):
            module, _ = _build_triangular(n)
            y = np.zeros(n, np.float32)
            interp = Interpreter(module, compiled=False, vectorize=vectorize)
            interp.call("f", a.copy(), y)
            outs.append(y)
            steps.append(interp.steps)
        assert outs[0].tobytes() == outs[1].tobytes()
        assert steps[0] == steps[1]

    def test_csr_bit_identical_and_same_steps(self):
        n = 48
        rng = np.random.default_rng(12)
        ptr, vals = _csr_inputs(n, rng)
        outs = []
        steps = []
        for vectorize in (False, True):
            module, _ = _build_csr(n)
            y = np.zeros(n, np.float32)
            interp = Interpreter(module, compiled=False, vectorize=vectorize)
            interp.call("f", ptr.copy(), vals.copy(), y)
            outs.append(y)
            steps.append(interp.steps)
        assert outs[0].tobytes() == outs[1].tobytes()
        assert steps[0] == steps[1]

    def test_shuffled_offsets_bail_reasoned_and_stay_correct(self, caplog):
        """A non-monotone offset array violates the CSR contract: the
        fast tier must refuse (logging why) and the scalar walk must
        still produce the exact scalar-tier bits."""
        n = 48
        rng = np.random.default_rng(13)
        ptr, vals = _csr_inputs(n, rng, shuffled=True)
        outs = []
        for vectorize in (False, True):
            module, _ = _build_csr(n)
            y = np.zeros(n, np.float32)
            interp = Interpreter(module, compiled=False, vectorize=vectorize)
            if vectorize:
                with caplog.at_level(
                    logging.DEBUG, logger="repro.ir.vectorize"
                ):
                    interp.call("f", ptr.copy(), vals.copy(), y)
            else:
                interp.call("f", ptr.copy(), vals.copy(), y)
            outs.append(y)
        assert outs[0].tobytes() == outs[1].tobytes()
        assert any(
            "monotone" in record.message for record in caplog.records
        ), "expected a reasoned monotone bail-out in the debug log"

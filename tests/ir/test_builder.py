"""Builder / insertion point tests."""

import pytest

from repro.dialects import arith
from repro.ir import Block, Builder, InsertPoint, IRError, build_region
from repro.ir.builder import inline_block_before
from repro.ir.types import index


def _block_with(*values):
    block = Block()
    ops = [block.add_op(arith.Constant.index(v)) for v in values]
    return block, ops


class TestInsertPoints:
    def test_at_end_appends(self):
        block, ops = _block_with(1, 2)
        Builder.at_end(block).insert(arith.Constant.index(3))
        assert [o.attributes["value"].value for o in block.ops] == [1, 2, 3]

    def test_at_start_prepends(self):
        block, ops = _block_with(1, 2)
        Builder.at_start(block).insert(arith.Constant.index(0))
        assert block.first_op.attributes["value"].value == 0

    def test_before(self):
        block, ops = _block_with(1, 3)
        Builder.before(ops[1]).insert(arith.Constant.index(2))
        assert [o.attributes["value"].value for o in block.ops] == [1, 2, 3]

    def test_after(self):
        block, ops = _block_with(1, 3)
        Builder.after(ops[0]).insert(arith.Constant.index(2))
        assert [o.attributes["value"].value for o in block.ops] == [1, 2, 3]

    def test_after_last(self):
        block, ops = _block_with(1)
        Builder.after(ops[0]).insert(arith.Constant.index(2))
        assert [o.attributes["value"].value for o in block.ops] == [1, 2]

    def test_before_detached_raises(self):
        with pytest.raises(IRError):
            InsertPoint.before(arith.Constant.index(1))

    def test_builder_insertion_stable_across_inserts(self):
        """Inserting before an anchor keeps subsequent inserts in order."""
        block, ops = _block_with(9)
        b = Builder.before(ops[0])
        b.insert(arith.Constant.index(1))
        b.insert(arith.Constant.index(2))
        assert [o.attributes["value"].value for o in block.ops] == [1, 2, 9]


class TestHelpers:
    def test_build_region(self):
        region, block, builder = build_region([index])
        assert len(block.args) == 1
        builder.insert(arith.Constant.index(1))
        assert len(block.ops) == 1

    def test_goto_methods(self):
        block, ops = _block_with(1, 2)
        b = Builder.at_end(block)
        b.goto_start(block)
        b.insert(arith.Constant.index(0))
        assert block.first_op.attributes["value"].value == 0
        b.goto_after(ops[1])
        b.insert(arith.Constant.index(3))
        assert block.last_op.attributes["value"].value == 3

    def test_inline_block_before(self):
        target = Block()
        anchor = target.add_op(arith.Constant.index(99))
        source = Block([index])
        inner = source.add_op(
            arith.AddI(source.args[0], source.args[0])
        )
        replacement = target.add_op(arith.Constant.index(5))
        # move replacement before anchor so it dominates the inlined use
        replacement.detach()
        target.insert_op_before(replacement, anchor)
        inline_block_before(source, anchor, [replacement.results[0]])
        assert inner.parent is target
        assert inner.operands[0] is replacement.results[0]

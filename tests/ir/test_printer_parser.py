"""Printer/parser round-trip tests, including a hypothesis property over
randomly generated arithmetic modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, builtin, func
from repro.ir import (
    Builder,
    ParseError,
    parse_module,
    print_op,
    verify,
)
from repro.ir.types import FunctionType, MemRefType, f32, f64, i32


def roundtrip(module):
    text = print_op(module)
    reparsed = parse_module(text)
    verify(reparsed)
    assert print_op(reparsed) == text
    return reparsed


class TestBasicRoundtrip:
    def test_empty_module(self):
        roundtrip(builtin.ModuleOp())

    def test_vadd(self, vadd_module):
        roundtrip(vadd_module)

    def test_module_attributes(self):
        from repro.ir.attributes import StringAttr

        module = builtin.ModuleOp(attributes={"target": StringAttr("fpga")})
        reparsed = roundtrip(module)
        assert reparsed.attributes["target"] == StringAttr("fpga")

    def test_memref_types(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp(
            "f",
            FunctionType(
                [MemRefType(f32, [4, 8], 1), MemRefType(f64, [], 0)], []
            ),
        )
        module.body.add_op(fn)
        Builder.at_end(fn.body).insert(func.ReturnOp())
        roundtrip(module)

    def test_dialect_types(self):
        """!device.kernelhandle and !hls.axi_protocol survive parsing."""
        from repro.dialects import device, hls

        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [4], 1)], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        create = b.insert(
            device.KernelCreateOp([fn.body.args[0]], device_function="k")
        )
        b.insert(device.KernelLaunchOp(create.results[0]))
        b.insert(device.KernelWaitOp(create.results[0]))
        code = b.insert(arith.Constant.int(0, 32))
        b.insert(hls.AxiProtocolOp(code.results[0]))
        b.insert(func.ReturnOp())
        roundtrip(module)

    def test_omp_region_roundtrip(self, saxpy_mini_source):
        from repro.frontend import compile_to_core

        module = compile_to_core(saxpy_mini_source).module
        roundtrip(module)

    def test_negative_and_float_attrs(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        b.insert(arith.Constant.int(-17, 64))
        b.insert(arith.Constant.float(-2.5e-3, 32))
        b.insert(arith.Constant.float(1e20, 64))
        b.insert(func.ReturnOp())
        roundtrip(module)


class TestParseErrors:
    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_module("not an op")

    def test_undefined_value(self):
        with pytest.raises(ParseError, match="undefined value"):
            parse_module('"test.op"(%0) : (i32) -> ()')

    def test_result_arity_mismatch(self):
        with pytest.raises(ParseError, match="results"):
            parse_module('%0 = "test.op"() : () -> ()')

    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_module('"test.op"() : () -> ()\n"another.op"() : () -> ()')

    def test_unknown_dialect_type(self):
        with pytest.raises(ParseError, match="unknown dialect type"):
            parse_module('"test.op"() : () -> (!what.ever)')

    def test_unregistered_op_ok(self):
        module = parse_module('"mystery.op"() : () -> ()')
        assert module.name == "builtin.unregistered"


# -- property-based round-trip --------------------------------------------------


@st.composite
def arith_modules(draw):
    """A module with one function of random integer/float arithmetic."""
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType([i32, f32], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    int_values = [fn.body.args[0]]
    float_values = [fn.body.args[1]]
    n_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["iconst", "fconst", "iop", "fop", "cmp"]))
        if kind == "iconst":
            value = draw(st.integers(min_value=-1000, max_value=1000))
            int_values.append(b.insert(arith.Constant.int(value, 32)).results[0])
        elif kind == "fconst":
            value = draw(
                st.floats(
                    allow_nan=False, allow_infinity=False,
                    min_value=-1e6, max_value=1e6,
                )
            )
            float_values.append(
                b.insert(arith.Constant.float(value, 32)).results[0]
            )
        elif kind == "iop":
            cls = draw(st.sampled_from([arith.AddI, arith.SubI, arith.MulI]))
            lhs = draw(st.sampled_from(int_values))
            rhs = draw(st.sampled_from(int_values))
            int_values.append(b.insert(cls(lhs, rhs)).results[0])
        elif kind == "fop":
            cls = draw(st.sampled_from([arith.AddF, arith.MulF, arith.SubF]))
            lhs = draw(st.sampled_from(float_values))
            rhs = draw(st.sampled_from(float_values))
            float_values.append(b.insert(cls(lhs, rhs)).results[0])
        else:
            predicate = draw(st.sampled_from(["eq", "slt", "sge"]))
            lhs = draw(st.sampled_from(int_values))
            rhs = draw(st.sampled_from(int_values))
            b.insert(arith.CmpI(predicate, lhs, rhs))
    b.insert(func.ReturnOp())
    return module


@given(arith_modules())
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(module):
    """print -> parse -> print is a fixed point for random modules."""
    verify(module)
    roundtrip(module)

"""Vectorized-loop fast path: equivalence with the scalar interpreter.

The property tested is the one the fast path relies on: for
dependence-free elementwise loops, NumPy whole-loop evaluation produces
*bit-identical* float32 results to the scalar walk.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder, Interpreter
from repro.ir.vectorize import _loop_is_vectorizable, try_vectorized_loop
from repro.ir.types import FunctionType, MemRefType, f32, index


def build_elementwise_module(n: int, op_cls):
    """y[i] = x[i] <op> x[i] over n elements (n >= 64 to trigger the fast
    path)."""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([vec, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y = fn.body.args
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    r = inner.insert(op_cls(xv, xv)).results[0]
    inner.insert(memref.Store(r, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestEligibility:
    def test_elementwise_is_vectorizable(self):
        _, loop = build_elementwise_module(128, arith.AddF)
        assert _loop_is_vectorizable(loop)

    def test_reduction_is_not(self):
        """s[] += x[i]: rank-0 store -> carried dependence -> scalar."""
        module = builtin.ModuleOp()
        fn = func.FuncOp(
            "f", FunctionType([MemRefType(f32, [128]), MemRefType(f32, [])], [])
        )
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, s = fn.body.args
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        sv = inner.insert(memref.Load(s, [])).results[0]
        acc = inner.insert(arith.AddF(sv, xv)).results[0]
        inner.insert(memref.Store(acc, s, []))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_nested_region_is_not(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        cond = inner.insert(arith.Constant.bool(True)).results[0]
        if_op = inner.insert(scf.If(cond))
        Builder.at_end(if_op.then_block).insert(scf.Yield())
        Builder.at_end(if_op.else_block).insert(scf.Yield())
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_short_loop_stays_scalar(self):
        module, loop = build_elementwise_module(8, arith.AddF)
        x = np.ones(8, np.float32)
        y = np.zeros(8, np.float32)
        interp = Interpreter(module)
        env = {}
        # short trip count: handler declines (returns False)
        fn = module.body.first_op
        env[fn.body.args[0]] = x
        env[fn.body.args[1]] = y
        assert not try_vectorized_loop(interp, loop, env, 0, 8, 1)


@pytest.mark.parametrize("op_cls", [arith.AddF, arith.MulF, arith.SubF, arith.DivF])
def test_bit_identical_to_scalar(op_cls):
    n = 200
    rng = np.random.default_rng(1)
    x = (rng.standard_normal(n).astype(np.float32) + 2.0).astype(np.float32)

    module_v, _ = build_elementwise_module(n, op_cls)
    y_vec = np.zeros(n, np.float32)
    Interpreter(module_v).call("f", x, y_vec)

    # scalar reference: force trips < 64 threshold off by monkeypatching
    # is unnecessary — compute directly per element with numpy scalars
    expected = np.zeros(n, np.float32)
    table = {
        arith.AddF: np.add, arith.MulF: np.multiply,
        arith.SubF: np.subtract, arith.DivF: np.divide,
    }
    for i in range(n):
        expected[i] = table[op_cls](x[i], x[i])

    assert y_vec.tobytes() == expected.tobytes()


@given(
    offset=st.integers(min_value=-3, max_value=3),
    scale=st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
    n=st.integers(min_value=64, max_value=257),
)
@settings(max_examples=30, deadline=None)
def test_saxpy_body_property(offset, scale, n):
    """y[i] = y[i] + a*x[i] matches NumPy bit-for-bit for random shapes."""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([vec, vec, MemRefType(f32, [])], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y, a = fn.body.args
    av = inner.insert(memref.Load(a, [])).results[0]
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    yv = inner.insert(memref.Load(y, [loop.induction_var])).results[0]
    prod = inner.insert(arith.MulF(av, xv)).results[0]
    acc = inner.insert(arith.AddF(yv, prod)).results[0]
    inner.insert(memref.Store(acc, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())

    rng = np.random.default_rng(abs(offset) + n)
    xa = rng.standard_normal(n).astype(np.float32)
    ya = rng.standard_normal(n).astype(np.float32)
    expected = (ya + np.float32(scale) * xa).astype(np.float32)
    Interpreter(module).call("f", xa, ya, np.array(scale, np.float32))
    assert ya.tobytes() == expected.tobytes()

"""Vectorized-loop fast path: equivalence with the scalar interpreter.

The property tested is the one the fast path relies on: for
dependence-free elementwise loops, NumPy whole-loop evaluation produces
*bit-identical* float32 results to the scalar walk.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder, Interpreter
from repro.ir.vectorize import _loop_is_vectorizable, try_vectorized_loop
from repro.ir.types import FunctionType, MemRefType, f32


def build_elementwise_module(n: int, op_cls):
    """y[i] = x[i] <op> x[i] over n elements (n >= 64 to trigger the fast
    path)."""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([vec, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y = fn.body.args
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    r = inner.insert(op_cls(xv, xv)).results[0]
    inner.insert(memref.Store(r, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestEligibility:
    def test_elementwise_is_vectorizable(self):
        _, loop = build_elementwise_module(128, arith.AddF)
        assert _loop_is_vectorizable(loop)

    def test_reduction_is_not(self):
        """s[] += x[i]: rank-0 store -> carried dependence -> scalar."""
        module = builtin.ModuleOp()
        fn = func.FuncOp(
            "f", FunctionType([MemRefType(f32, [128]), MemRefType(f32, [])], [])
        )
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, s = fn.body.args
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        sv = inner.insert(memref.Load(s, [])).results[0]
        acc = inner.insert(arith.AddF(sv, xv)).results[0]
        inner.insert(memref.Store(acc, s, []))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_nested_region_is_not(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        cond = inner.insert(arith.Constant.bool(True)).results[0]
        if_op = inner.insert(scf.If(cond))
        Builder.at_end(if_op.then_block).insert(scf.Yield())
        Builder.at_end(if_op.else_block).insert(scf.Yield())
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_short_loop_stays_scalar(self):
        module, loop = build_elementwise_module(8, arith.AddF)
        x = np.ones(8, np.float32)
        y = np.zeros(8, np.float32)
        interp = Interpreter(module)
        env = {}
        # short trip count: handler declines (returns False)
        fn = module.body.first_op
        env[fn.body.args[0]] = x
        env[fn.body.args[1]] = y
        assert not try_vectorized_loop(interp, loop, env, 0, 8, 1)


@pytest.mark.parametrize("op_cls", [arith.AddF, arith.MulF, arith.SubF, arith.DivF])
def test_bit_identical_to_scalar(op_cls):
    n = 200
    rng = np.random.default_rng(1)
    x = (rng.standard_normal(n).astype(np.float32) + 2.0).astype(np.float32)

    module_v, _ = build_elementwise_module(n, op_cls)
    y_vec = np.zeros(n, np.float32)
    Interpreter(module_v).call("f", x, y_vec)

    # scalar reference: force trips < 64 threshold off by monkeypatching
    # is unnecessary — compute directly per element with numpy scalars
    expected = np.zeros(n, np.float32)
    table = {
        arith.AddF: np.add, arith.MulF: np.multiply,
        arith.SubF: np.subtract, arith.DivF: np.divide,
    }
    for i in range(n):
        expected[i] = table[op_cls](x[i], x[i])

    assert y_vec.tobytes() == expected.tobytes()


@given(
    offset=st.integers(min_value=-3, max_value=3),
    scale=st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
    n=st.integers(min_value=64, max_value=257),
)
@settings(max_examples=30, deadline=None)
def test_saxpy_body_property(offset, scale, n):
    """y[i] = y[i] + a*x[i] matches NumPy bit-for-bit for random shapes."""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([vec, vec, MemRefType(f32, [])], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y, a = fn.body.args
    av = inner.insert(memref.Load(a, [])).results[0]
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    yv = inner.insert(memref.Load(y, [loop.induction_var])).results[0]
    prod = inner.insert(arith.MulF(av, xv)).results[0]
    acc = inner.insert(arith.AddF(yv, prod)).results[0]
    inner.insert(memref.Store(acc, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())

    rng = np.random.default_rng(abs(offset) + n)
    xa = rng.standard_normal(n).astype(np.float32)
    ya = rng.standard_normal(n).astype(np.float32)
    expected = (ya + np.float32(scale) * xa).astype(np.float32)
    Interpreter(module).call("f", xa, ya, np.array(scale, np.float32))
    assert ya.tobytes() == expected.tobytes()


# ---------------------------------------------------------------------------
# Gallery loop shapes: invariant store dims, gathers, rank-2 nests
# ---------------------------------------------------------------------------


def _row_update_module(n: int):
    """b[row, j] = a[row, j] + 1.0 — invariant row subscript, affine j."""
    module = builtin.ModuleOp()
    mat = MemRefType(f32, [n, n])
    fn = func.FuncOp("f", FunctionType([mat, mat, MemRefType(f32, [])], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    row = b.insert(arith.Constant.index(2)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    a_arg, b_arg, _ = fn.body.args
    av = inner.insert(memref.Load(a_arg, [row, loop.induction_var])).results[0]
    one = inner.insert(arith.Constant.float(1.0, 32)).results[0]
    r = inner.insert(arith.AddF(av, one)).results[0]
    inner.insert(memref.Store(r, b_arg, [row, loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestInvariantStoreDim:
    """2-D array row updates: one invariant subscript + one affine."""

    def test_is_vectorizable(self):
        _, loop = _row_update_module(128)
        assert _loop_is_vectorizable(loop)

    def test_bit_identical(self):
        n = 128
        module, _ = _row_update_module(n)
        rng_local = np.random.default_rng(9)
        a = rng_local.standard_normal((n, n)).astype(np.float32)
        out_vec = np.zeros((n, n), np.float32)
        out_scalar = np.zeros((n, n), np.float32)
        Interpreter(module).call("f", a, out_vec, np.zeros((), np.float32))
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", a, out_scalar, np.zeros((), np.float32)
        )
        assert out_vec.tobytes() == out_scalar.tobytes()
        assert np.array_equal(out_vec[2], a[2] + np.float32(1.0))

    def test_all_invariant_dims_stay_scalar(self):
        """b[2, 3] = ... every iteration: same cell, must not vectorize."""
        n = 128
        module = builtin.ModuleOp()
        mat = MemRefType(f32, [n, n])
        fn = func.FuncOp("f", FunctionType([mat], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        i2 = b.insert(arith.Constant.index(2)).results[0]
        i3 = b.insert(arith.Constant.index(3)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        v = inner.insert(arith.Constant.float(5.0, 32)).results[0]
        inner.insert(memref.Store(v, fn.body.args[0], [i2, i3]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)


def _gather_module(n: int):
    """y[i] = x[idx[i]] — the SpMV gather shape."""
    module = builtin.ModuleOp()
    from repro.ir.types import i32

    fn = func.FuncOp(
        "f",
        FunctionType(
            [MemRefType(f32, [n]), MemRefType(i32, [n]), MemRefType(f32, [n])],
            [],
        ),
    )
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, idx, y = fn.body.args
    iv = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
    xv = inner.insert(memref.Load(x, [iv])).results[0]
    inner.insert(memref.Store(xv, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestGatherLoads:
    def test_is_vectorizable(self):
        _, loop = _gather_module(128)
        assert _loop_is_vectorizable(loop)

    def test_bit_identical(self):
        n = 128
        module, _ = _gather_module(n)
        rng_local = np.random.default_rng(11)
        x = rng_local.standard_normal(n).astype(np.float32)
        idx = rng_local.integers(0, n, n).astype(np.int32)
        y_vec = np.zeros(n, np.float32)
        y_scalar = np.zeros(n, np.float32)
        Interpreter(module).call("f", x, idx, y_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x, idx, y_scalar
        )
        assert y_vec.tobytes() == y_scalar.tobytes()
        assert np.array_equal(y_vec, x[idx])

    def test_scatter_through_index_is_not_elementwise(self):
        """y[idx[i]] = x[i]: an indirect *store* could collide, so it is
        excluded from the elementwise path — it classifies as the
        runtime-proved ``scatter_store`` mode instead."""
        from repro.ir.vectorize import loop_vector_mode

        _, loop = _scatter_module(128)
        assert not _loop_is_vectorizable(loop)
        mode, plan = loop_vector_mode(loop)
        assert mode == "scatter_store"
        # the single store's subscript has no static (affine) proof, so
        # dimension 0 must pass the runtime injectivity proof
        assert plan.proof_dims == ((0,),)


def _scatter_module(n: int, scale: bool = False):
    """y[idx[i]] = x[i] (optionally 2*x[i]) — the permutation-scatter
    shape behind the histogram workload's second kernel."""
    module = builtin.ModuleOp()
    from repro.ir.types import i32

    fn = func.FuncOp(
        "f",
        FunctionType(
            [MemRefType(f32, [n]), MemRefType(i32, [n]), MemRefType(f32, [n])],
            [],
        ),
    )
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, idx, y = fn.body.args
    iv = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    if scale:
        two = inner.insert(arith.Constant.float(2.0, 32)).results[0]
        xv = inner.insert(arith.MulF(two, xv)).results[0]
    inner.insert(memref.Store(xv, y, [iv]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


def _accumulate_scatter_module(n: int, nb: int):
    """h[idx[i]] = h[idx[i]] + w[i] with *separate* index-load chains on
    the load and store side (the frontend's lowering of
    ``h(bins(i)) = h(bins(i)) + w(i)``)."""
    module = builtin.ModuleOp()
    from repro.ir.types import i32

    fn = func.FuncOp(
        "f",
        FunctionType(
            [MemRefType(i32, [n]), MemRefType(f32, [n]), MemRefType(f32, [nb])],
            [],
        ),
    )
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    idx, w, h = fn.body.args
    load_idx = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
    hv = inner.insert(memref.Load(h, [load_idx])).results[0]
    wv = inner.insert(memref.Load(w, [loop.induction_var])).results[0]
    acc = inner.insert(arith.AddF(hv, wv)).results[0]
    store_idx = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
    inner.insert(memref.Store(acc, h, [store_idx]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestScatterStores:
    def test_permutation_scatter_bit_identical(self):
        n = 256
        module, loop = _scatter_module(n, scale=True)
        from repro.ir.vectorize import loop_vector_mode

        mode, _ = loop_vector_mode(loop)
        assert mode == "scatter_store"
        rng = np.random.default_rng(17)
        x = rng.standard_normal(n).astype(np.float32)
        idx = rng.permutation(n).astype(np.int32)
        y_vec = np.zeros(n, np.float32)
        y_scalar = np.zeros(n, np.float32)
        Interpreter(module).call("f", x, idx, y_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x, idx, y_scalar
        )
        assert y_vec.tobytes() == y_scalar.tobytes()
        expected = np.zeros(n, np.float32)
        expected[idx] = (np.float32(2.0) * x).astype(np.float32)
        assert np.array_equal(y_vec, expected)

    def test_monotone_index_proof(self):
        """A sorted (strictly increasing, non-contiguous) index array
        passes the cheap monotone tier of the proof lattice."""
        n = 128
        module, _ = _scatter_module(n)
        rng = np.random.default_rng(19)
        x = rng.standard_normal(n).astype(np.float32)
        idx = np.sort(
            rng.choice(4 * n, size=n, replace=False).astype(np.int32)
        )
        y_vec = np.zeros(4 * n, np.float32)
        y_scalar = np.zeros(4 * n, np.float32)
        Interpreter(module).call("f", x, idx, y_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x, idx, y_scalar
        )
        assert y_vec.tobytes() == y_scalar.tobytes()

    def test_colliding_scatter_bails_and_matches_scalar(self, caplog):
        """Duplicate indices fail every runtime proof tier: the loop logs
        the failed proof, reruns scalar, and last-write-wins order is
        preserved bit for bit."""
        import logging

        n = 128
        module, _ = _scatter_module(n)
        rng = np.random.default_rng(23)
        x = rng.standard_normal(n).astype(np.float32)
        idx = rng.integers(0, 8, n).astype(np.int32)  # heavy collisions
        y_vec = np.zeros(n, np.float32)
        y_scalar = np.zeros(n, np.float32)
        with caplog.at_level(logging.DEBUG, logger="repro.ir.vectorize"):
            Interpreter(module).call("f", x, idx, y_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x, idx, y_scalar
        )
        assert y_vec.tobytes() == y_scalar.tobytes()
        assert any(
            "injectivity proof" in r.message for r in caplog.records
        )

    def test_accumulate_scatter_is_memref_reduction(self):
        """h[idx[i]] += w[i] with separate load/store index chains is the
        collision-tolerant ``ufunc.at`` reduction — no proof needed."""
        from repro.ir.vectorize import loop_vector_mode

        n, nb = 512, 16
        module, loop = _accumulate_scatter_module(n, nb)
        mode, _ = loop_vector_mode(loop)
        assert mode == "memref_reduction"
        rng = np.random.default_rng(29)
        w = rng.standard_normal(n).astype(np.float32)
        idx = rng.integers(0, nb, n).astype(np.int32)
        h_vec = np.zeros(nb, np.float32)
        h_scalar = np.zeros(nb, np.float32)
        Interpreter(module).call("f", idx, w, h_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", idx, w, h_scalar
        )
        assert h_vec.tobytes() == h_scalar.tobytes()
        expected = np.zeros(nb, np.float32)
        np.add.at(expected, idx, w)
        assert h_vec.tobytes() == expected.tobytes()

    def test_stored_index_array_is_not_indirect(self):
        """Storing to the index array inside the body voids the gather
        proof: the loop must not classify as a scatter."""
        from repro.ir.vectorize import loop_vector_mode

        n = 128
        module = builtin.ModuleOp()
        from repro.ir.types import i32

        fn = func.FuncOp(
            "f",
            FunctionType(
                [MemRefType(f32, [n]), MemRefType(i32, [n]),
                 MemRefType(f32, [n])],
                [],
            ),
        )
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, idx, y = fn.body.args
        iv = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        inner.insert(memref.Store(xv, y, [iv]))
        zero = inner.insert(arith.Constant.int(0, 32)).results[0]
        inner.insert(memref.Store(zero, idx, [loop.induction_var]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        mode, _ = loop_vector_mode(loop)
        assert mode is None

    def test_scatter_read_back_stays_scalar(self):
        """A body that also *reads* the scattered-to buffer cannot defer
        its stores — must not classify."""
        from repro.ir.vectorize import loop_vector_mode

        n = 128
        module = builtin.ModuleOp()
        from repro.ir.types import i32

        fn = func.FuncOp(
            "f",
            FunctionType(
                [MemRefType(f32, [n]), MemRefType(i32, [n]),
                 MemRefType(f32, [n])],
                [],
            ),
        )
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, idx, y = fn.body.args
        iv = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
        # read y at an affine position, then scatter into y
        yv = inner.insert(memref.Load(y, [loop.induction_var])).results[0]
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        summed = inner.insert(arith.AddF(yv, xv)).results[0]
        inner.insert(memref.Store(summed, y, [iv]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        mode, _ = loop_vector_mode(loop)
        assert mode is None


class TestBailOutLogging:
    def test_scalar_bail_out_is_logged(self, caplog):
        import logging

        from repro.ir.vectorize import invalidate_analysis, loop_vector_mode

        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [])], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        v = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        inner.insert(memref.Store(v, fn.body.args[0], []))  # rank-0 store
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        invalidate_analysis(loop)
        with caplog.at_level(logging.DEBUG, logger="repro.ir.vectorize"):
            mode, _ = loop_vector_mode(loop)
        assert mode is None
        assert any("bail-out" in r.message for r in caplog.records)

    def test_nan_minmax_bail_is_logged_and_scalar_identical(self, caplog):
        """A NaN in a min/max reduction input logs the documented reason
        (NumPy would propagate the NaN where Python min/max ignore it)
        and the scalar rerun produces the scalar tier's exact bits."""
        import logging

        n = 128
        rng_local = np.random.default_rng(31)
        x = rng_local.standard_normal(n).astype(np.float32)
        x[n // 2] = np.nan

        def reduce_with(compiled, vectorize):
            module = builtin.ModuleOp()
            fn = func.FuncOp(
                "f", FunctionType([MemRefType(f32, [n]), f32], [f32])
            )
            module.body.add_op(fn)
            b = Builder.at_end(fn.body)
            arr, init = fn.body.args
            lb = b.insert(arith.Constant.index(0)).results[0]
            ub = b.insert(arith.Constant.index(n)).results[0]
            step = b.insert(arith.Constant.index(1)).results[0]
            loop = b.insert(scf.For(lb, ub, step, [init]))
            inner = Builder.at_end(loop.body)
            xv = inner.insert(
                memref.Load(arr, [loop.induction_var])
            ).results[0]
            combined = inner.insert(
                arith.MinF(loop.body.args[1], xv)
            ).results[0]
            inner.insert(scf.Yield([combined]))
            b.insert(func.ReturnOp([loop.results[0]]))
            interp = Interpreter(module, compiled=compiled, vectorize=vectorize)
            (value,) = interp.call("f", x, float(np.float32(1e5)))
            return value

        with caplog.at_level(logging.DEBUG, logger="repro.ir.vectorize"):
            fast = reduce_with(True, True)
        scalar = reduce_with(False, False)
        assert np.float32(fast).tobytes() == np.float32(scalar).tobytes()
        assert any(
            "NaN" in r.message and "bail-out" in r.message
            for r in caplog.records
        )

    def test_rank_n_nest_bail_is_logged(self, caplog):
        """A rank-2 nest whose store couples both IVs logs the reasoned
        rank-n bail-out, and the scalar nested walk it falls back to
        produces bit-identical results on every tier."""
        import logging

        from repro.dialects import omp

        n = 16

        def build():
            module = builtin.ModuleOp()
            fn = func.FuncOp(
                "f", FunctionType([MemRefType(f32, [2 * n + 2])], [])
            )
            module.body.add_op(fn)
            b = Builder.at_end(fn.body)
            lb = b.insert(arith.Constant.index(0)).results[0]
            ub = b.insert(arith.Constant.index(n)).results[0]
            step = b.insert(arith.Constant.index(1)).results[0]
            nest = b.insert(
                omp.LoopNestOp([lb, lb], [ub, ub], [step, step])
            )
            inner = Builder.at_end(nest.body)
            i, j = nest.body.args
            # couples both IVs (and collides across iterations)
            flat = inner.insert(arith.AddI(i, j)).results[0]
            as_f = inner.insert(arith.SIToFP(flat, f32)).results[0]
            inner.insert(memref.Store(as_f, fn.body.args[0], [flat]))
            inner.insert(omp.YieldOp())
            b.insert(func.ReturnOp())
            return module, nest

        module, nest = build()
        out_fast = np.full(2 * n + 2, -1.0, np.float32)
        with caplog.at_level(logging.DEBUG, logger="repro.ir.vectorize"):
            Interpreter(module).call("f", out_fast)
        assert any(
            "rank-2" in r.message and "couples two IVs" in r.message
            for r in caplog.records
        )
        module_s, _ = build()
        out_scalar = np.full(2 * n + 2, -1.0, np.float32)
        Interpreter(module_s, compiled=False, vectorize=False).call(
            "f", out_scalar
        )
        assert out_fast.tobytes() == out_scalar.tobytes()


class TestOverlappingStores:
    def test_two_offset_stores_stay_scalar(self):
        """b[i] = 1; b[i+1] = 2 overlaps across iterations: whole-space
        evaluation would reorder the writes, so it must not vectorize."""
        n = 128
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [n + 1])], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        one = inner.insert(arith.Constant.index(1)).results[0]
        v1 = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        v2 = inner.insert(arith.Constant.float(2.0, 32)).results[0]
        shifted = inner.insert(arith.AddI(loop.induction_var, one)).results[0]
        inner.insert(memref.Store(v1, fn.body.args[0], [loop.induction_var]))
        inner.insert(memref.Store(v2, fn.body.args[0], [shifted]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_same_cell_stores_still_vectorize(self):
        """Two stores to the identical subscript keep body op order per
        cell — safe, and results match the scalar tier bit for bit."""
        n = 128
        module = builtin.ModuleOp()
        vec = MemRefType(f32, [n])
        fn = func.FuncOp("f", FunctionType([vec, vec], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, y = fn.body.args
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        inner.insert(memref.Store(xv, y, [loop.induction_var]))
        doubled = inner.insert(arith.AddF(xv, xv)).results[0]
        inner.insert(memref.Store(doubled, y, [loop.induction_var]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert _loop_is_vectorizable(loop)
        rng_local = np.random.default_rng(13)
        x_data = rng_local.standard_normal(n).astype(np.float32)
        y_vec = np.zeros(n, np.float32)
        y_scalar = np.zeros(n, np.float32)
        Interpreter(module).call("f", x_data, y_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x_data, y_scalar
        )
        assert y_vec.tobytes() == y_scalar.tobytes()


class TestAnalysisCacheScoping:
    """The classification cache used to be a module-level dict keyed by
    ``id(loop)``: entries leaked for the life of the process, and a
    recycled id() could even serve a stale plan to an unrelated loop.
    It now hangs off the IR root op and dies with it."""

    def _reduction_module(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp(
            "f",
            FunctionType([MemRefType(f32, [128]), MemRefType(f32, [])], []),
        )
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, s = fn.body.args
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        sv = inner.insert(memref.Load(s, [])).results[0]
        acc = inner.insert(arith.AddF(sv, xv)).results[0]
        inner.insert(memref.Store(acc, s, []))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        return module, loop

    def test_leaky_module_global_is_gone(self):
        import repro.ir.vectorize as vectorize_mod

        assert not hasattr(vectorize_mod, "_analysis_cache")

    def test_entries_live_on_the_owning_root(self):
        from repro.ir.vectorize import loop_vector_mode

        m1, l1 = build_elementwise_module(128, arith.AddF)
        m2, l2 = build_elementwise_module(128, arith.MulF)
        loop_vector_mode(l1)
        loop_vector_mode(l2)
        assert id(l1) in m1.analysis_cache
        assert id(l2) in m2.analysis_cache
        assert id(l1) not in m2.analysis_cache
        assert id(l2) not in m1.analysis_cache

    def test_cached_plans_do_not_outlive_their_program(self):
        import gc
        import weakref

        from repro.ir.vectorize import loop_vector_mode

        module, loop = self._reduction_module()
        mode, plan = loop_vector_mode(loop)
        assert mode == "memref_reduction" and plan is not None
        ref = weakref.ref(plan)
        del mode, plan, loop, module
        gc.collect()
        assert ref() is None

"""Vectorized-loop fast path: equivalence with the scalar interpreter.

The property tested is the one the fast path relies on: for
dependence-free elementwise loops, NumPy whole-loop evaluation produces
*bit-identical* float32 results to the scalar walk.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder, Interpreter
from repro.ir.vectorize import _loop_is_vectorizable, try_vectorized_loop
from repro.ir.types import FunctionType, MemRefType, f32, index


def build_elementwise_module(n: int, op_cls):
    """y[i] = x[i] <op> x[i] over n elements (n >= 64 to trigger the fast
    path)."""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([vec, vec], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y = fn.body.args
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    r = inner.insert(op_cls(xv, xv)).results[0]
    inner.insert(memref.Store(r, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestEligibility:
    def test_elementwise_is_vectorizable(self):
        _, loop = build_elementwise_module(128, arith.AddF)
        assert _loop_is_vectorizable(loop)

    def test_reduction_is_not(self):
        """s[] += x[i]: rank-0 store -> carried dependence -> scalar."""
        module = builtin.ModuleOp()
        fn = func.FuncOp(
            "f", FunctionType([MemRefType(f32, [128]), MemRefType(f32, [])], [])
        )
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, s = fn.body.args
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        sv = inner.insert(memref.Load(s, [])).results[0]
        acc = inner.insert(arith.AddF(sv, xv)).results[0]
        inner.insert(memref.Store(acc, s, []))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_nested_region_is_not(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        cond = inner.insert(arith.Constant.bool(True)).results[0]
        if_op = inner.insert(scf.If(cond))
        Builder.at_end(if_op.then_block).insert(scf.Yield())
        Builder.at_end(if_op.else_block).insert(scf.Yield())
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_short_loop_stays_scalar(self):
        module, loop = build_elementwise_module(8, arith.AddF)
        x = np.ones(8, np.float32)
        y = np.zeros(8, np.float32)
        interp = Interpreter(module)
        env = {}
        # short trip count: handler declines (returns False)
        fn = module.body.first_op
        env[fn.body.args[0]] = x
        env[fn.body.args[1]] = y
        assert not try_vectorized_loop(interp, loop, env, 0, 8, 1)


@pytest.mark.parametrize("op_cls", [arith.AddF, arith.MulF, arith.SubF, arith.DivF])
def test_bit_identical_to_scalar(op_cls):
    n = 200
    rng = np.random.default_rng(1)
    x = (rng.standard_normal(n).astype(np.float32) + 2.0).astype(np.float32)

    module_v, _ = build_elementwise_module(n, op_cls)
    y_vec = np.zeros(n, np.float32)
    Interpreter(module_v).call("f", x, y_vec)

    # scalar reference: force trips < 64 threshold off by monkeypatching
    # is unnecessary — compute directly per element with numpy scalars
    expected = np.zeros(n, np.float32)
    table = {
        arith.AddF: np.add, arith.MulF: np.multiply,
        arith.SubF: np.subtract, arith.DivF: np.divide,
    }
    for i in range(n):
        expected[i] = table[op_cls](x[i], x[i])

    assert y_vec.tobytes() == expected.tobytes()


@given(
    offset=st.integers(min_value=-3, max_value=3),
    scale=st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
    n=st.integers(min_value=64, max_value=257),
)
@settings(max_examples=30, deadline=None)
def test_saxpy_body_property(offset, scale, n):
    """y[i] = y[i] + a*x[i] matches NumPy bit-for-bit for random shapes."""
    module = builtin.ModuleOp()
    vec = MemRefType(f32, [n])
    fn = func.FuncOp("f", FunctionType([vec, vec, MemRefType(f32, [])], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, y, a = fn.body.args
    av = inner.insert(memref.Load(a, [])).results[0]
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    yv = inner.insert(memref.Load(y, [loop.induction_var])).results[0]
    prod = inner.insert(arith.MulF(av, xv)).results[0]
    acc = inner.insert(arith.AddF(yv, prod)).results[0]
    inner.insert(memref.Store(acc, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())

    rng = np.random.default_rng(abs(offset) + n)
    xa = rng.standard_normal(n).astype(np.float32)
    ya = rng.standard_normal(n).astype(np.float32)
    expected = (ya + np.float32(scale) * xa).astype(np.float32)
    Interpreter(module).call("f", xa, ya, np.array(scale, np.float32))
    assert ya.tobytes() == expected.tobytes()


# ---------------------------------------------------------------------------
# Gallery loop shapes: invariant store dims, gathers, rank-2 nests
# ---------------------------------------------------------------------------


def _row_update_module(n: int):
    """b[row, j] = a[row, j] + 1.0 — invariant row subscript, affine j."""
    module = builtin.ModuleOp()
    mat = MemRefType(f32, [n, n])
    fn = func.FuncOp("f", FunctionType([mat, mat, MemRefType(f32, [])], []))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    row = b.insert(arith.Constant.index(2)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    a_arg, b_arg, _ = fn.body.args
    av = inner.insert(memref.Load(a_arg, [row, loop.induction_var])).results[0]
    one = inner.insert(arith.Constant.float(1.0, 32)).results[0]
    r = inner.insert(arith.AddF(av, one)).results[0]
    inner.insert(memref.Store(r, b_arg, [row, loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestInvariantStoreDim:
    """2-D array row updates: one invariant subscript + one affine."""

    def test_is_vectorizable(self):
        _, loop = _row_update_module(128)
        assert _loop_is_vectorizable(loop)

    def test_bit_identical(self):
        n = 128
        module, _ = _row_update_module(n)
        rng_local = np.random.default_rng(9)
        a = rng_local.standard_normal((n, n)).astype(np.float32)
        out_vec = np.zeros((n, n), np.float32)
        out_scalar = np.zeros((n, n), np.float32)
        Interpreter(module).call("f", a, out_vec, np.zeros((), np.float32))
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", a, out_scalar, np.zeros((), np.float32)
        )
        assert out_vec.tobytes() == out_scalar.tobytes()
        assert np.array_equal(out_vec[2], a[2] + np.float32(1.0))

    def test_all_invariant_dims_stay_scalar(self):
        """b[2, 3] = ... every iteration: same cell, must not vectorize."""
        n = 128
        module = builtin.ModuleOp()
        mat = MemRefType(f32, [n, n])
        fn = func.FuncOp("f", FunctionType([mat], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        i2 = b.insert(arith.Constant.index(2)).results[0]
        i3 = b.insert(arith.Constant.index(3)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        v = inner.insert(arith.Constant.float(5.0, 32)).results[0]
        inner.insert(memref.Store(v, fn.body.args[0], [i2, i3]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)


def _gather_module(n: int):
    """y[i] = x[idx[i]] — the SpMV gather shape."""
    module = builtin.ModuleOp()
    from repro.ir.types import i32

    fn = func.FuncOp(
        "f",
        FunctionType(
            [MemRefType(f32, [n]), MemRefType(i32, [n]), MemRefType(f32, [n])],
            [],
        ),
    )
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    x, idx, y = fn.body.args
    iv = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
    xv = inner.insert(memref.Load(x, [iv])).results[0]
    inner.insert(memref.Store(xv, y, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module, loop


class TestGatherLoads:
    def test_is_vectorizable(self):
        _, loop = _gather_module(128)
        assert _loop_is_vectorizable(loop)

    def test_bit_identical(self):
        n = 128
        module, _ = _gather_module(n)
        rng_local = np.random.default_rng(11)
        x = rng_local.standard_normal(n).astype(np.float32)
        idx = rng_local.integers(0, n, n).astype(np.int32)
        y_vec = np.zeros(n, np.float32)
        y_scalar = np.zeros(n, np.float32)
        Interpreter(module).call("f", x, idx, y_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x, idx, y_scalar
        )
        assert y_vec.tobytes() == y_scalar.tobytes()
        assert np.array_equal(y_vec, x[idx])

    def test_scatter_through_index_stays_scalar(self):
        """y[idx[i]] = x[i]: indirect *store* could collide — scalar."""
        n = 128
        module2 = builtin.ModuleOp()
        from repro.ir.types import i32

        fn2 = func.FuncOp(
            "f",
            FunctionType(
                [MemRefType(f32, [n]), MemRefType(i32, [n]),
                 MemRefType(f32, [n])],
                [],
            ),
        )
        module2.body.add_op(fn2)
        b = Builder.at_end(fn2.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, idx, y = fn2.body.args
        iv = inner.insert(memref.Load(idx, [loop.induction_var])).results[0]
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        inner.insert(memref.Store(xv, y, [iv]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)


class TestBailOutLogging:
    def test_scalar_bail_out_is_logged(self, caplog):
        import logging

        from repro.ir.vectorize import _analysis_cache, loop_vector_mode

        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [])], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(128)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        v = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        inner.insert(memref.Store(v, fn.body.args[0], []))  # rank-0 store
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        _analysis_cache.pop(id(loop), None)
        with caplog.at_level(logging.DEBUG, logger="repro.ir.vectorize"):
            mode, _ = loop_vector_mode(loop)
        assert mode is None
        assert any("bail-out" in r.message for r in caplog.records)


class TestOverlappingStores:
    def test_two_offset_stores_stay_scalar(self):
        """b[i] = 1; b[i+1] = 2 overlaps across iterations: whole-space
        evaluation would reorder the writes, so it must not vectorize."""
        n = 128
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [n + 1])], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        one = inner.insert(arith.Constant.index(1)).results[0]
        v1 = inner.insert(arith.Constant.float(1.0, 32)).results[0]
        v2 = inner.insert(arith.Constant.float(2.0, 32)).results[0]
        shifted = inner.insert(arith.AddI(loop.induction_var, one)).results[0]
        inner.insert(memref.Store(v1, fn.body.args[0], [loop.induction_var]))
        inner.insert(memref.Store(v2, fn.body.args[0], [shifted]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert not _loop_is_vectorizable(loop)

    def test_same_cell_stores_still_vectorize(self):
        """Two stores to the identical subscript keep body op order per
        cell — safe, and results match the scalar tier bit for bit."""
        n = 128
        module = builtin.ModuleOp()
        vec = MemRefType(f32, [n])
        fn = func.FuncOp("f", FunctionType([vec, vec], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(0)).results[0]
        ub = b.insert(arith.Constant.index(n)).results[0]
        step = b.insert(arith.Constant.index(1)).results[0]
        loop = b.insert(scf.For(lb, ub, step))
        inner = Builder.at_end(loop.body)
        x, y = fn.body.args
        xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
        inner.insert(memref.Store(xv, y, [loop.induction_var]))
        doubled = inner.insert(arith.AddF(xv, xv)).results[0]
        inner.insert(memref.Store(doubled, y, [loop.induction_var]))
        inner.insert(scf.Yield())
        b.insert(func.ReturnOp())
        assert _loop_is_vectorizable(loop)
        rng_local = np.random.default_rng(13)
        x_data = rng_local.standard_normal(n).astype(np.float32)
        y_vec = np.zeros(n, np.float32)
        y_scalar = np.zeros(n, np.float32)
        Interpreter(module).call("f", x_data, y_vec)
        Interpreter(module, compiled=False, vectorize=False).call(
            "f", x_data, y_scalar
        )
        assert y_vec.tobytes() == y_scalar.tobytes()

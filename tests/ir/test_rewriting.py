"""Pattern rewriting driver tests."""

import pytest

from repro.dialects import arith, builtin, func
from repro.ir import (
    Builder,
    GreedyPatternRewriter,
    IRError,
    Operation,
    PatternRewriter,
    RewritePattern,
    verify,
)
from repro.ir.types import FunctionType


def _module():
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType([], []))
    module.body.add_op(fn)
    return module, Builder.at_end(fn.body)


class MulByTwoToAdd(RewritePattern):
    """x * 2 -> x + x."""

    op_name = "arith.muli"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        from repro.ir.attributes import IntegerAttr
        from repro.ir.core import OpResult

        rhs = op.operands[1]
        if not isinstance(rhs, OpResult) or rhs.op.name != "arith.constant":
            return
        attr = rhs.op.attributes["value"]
        if not isinstance(attr, IntegerAttr) or attr.value != 2:
            return
        rewriter.replace_matched_op(arith.AddI(op.operands[0], op.operands[0]))


class TestGreedyDriver:
    def test_applies_pattern(self):
        module, b = _module()
        x = b.insert(arith.Constant.int(5, 32)).results[0]
        two = b.insert(arith.Constant.int(2, 32)).results[0]
        mul = b.insert(arith.MulI(x, two))
        sink = b.insert(arith.AddI(mul.results[0], x))
        b.insert(func.ReturnOp())
        changed = GreedyPatternRewriter([MulByTwoToAdd()]).rewrite(module)
        assert changed
        names = [op.name for op in module.walk()]
        assert "arith.muli" not in names
        verify(module)
        # sink now consumes the new add
        assert sink.operands[0].op.name == "arith.addi"

    def test_no_match_no_change(self):
        module, b = _module()
        x = b.insert(arith.Constant.int(5, 32)).results[0]
        three = b.insert(arith.Constant.int(3, 32)).results[0]
        b.insert(arith.MulI(x, three))
        b.insert(func.ReturnOp())
        assert not GreedyPatternRewriter([MulByTwoToAdd()]).rewrite(module)

    def test_fixpoint_cascade(self):
        """(x*2)*2 requires two iterations to fully rewrite."""
        module, b = _module()
        x = b.insert(arith.Constant.int(5, 32)).results[0]
        two = b.insert(arith.Constant.int(2, 32)).results[0]
        m1 = b.insert(arith.MulI(x, two))
        b.insert(arith.MulI(m1.results[0], two))
        b.insert(func.ReturnOp())
        GreedyPatternRewriter([MulByTwoToAdd()]).rewrite(module)
        assert not [op for op in module.walk() if op.name == "arith.muli"]

    def test_non_convergence_detected(self):
        class Flipper(RewritePattern):
            op_name = "arith.addi"

            def match_and_rewrite(self, op, rewriter):
                rewriter.replace_matched_op(
                    arith.AddI(op.operands[1], op.operands[0])
                )

        module, b = _module()
        x = b.insert(arith.Constant.int(1, 32)).results[0]
        y = b.insert(arith.Constant.int(2, 32)).results[0]
        b.insert(arith.AddI(x, y))
        b.insert(func.ReturnOp())
        with pytest.raises(IRError, match="converge"):
            GreedyPatternRewriter([Flipper()], max_iterations=4).rewrite(module)


class TestPatternRewriterApi:
    def test_replace_arity_mismatch(self):
        module, b = _module()
        b.insert(arith.Constant.int(1, 32))
        b.insert(func.ReturnOp())

        class Bad(RewritePattern):
            op_name = "arith.constant"

            def match_and_rewrite(self, op, rewriter):
                rewriter.replace_matched_op(func.ReturnOp(), new_results=[])

        with pytest.raises(IRError):
            GreedyPatternRewriter([Bad()]).rewrite(module)

    def test_insert_after_matched(self):
        module, b = _module()
        b.insert(arith.Constant.int(1, 32))
        b.insert(func.ReturnOp())

        inserted = []

        class After(RewritePattern):
            op_name = "arith.constant"

            def match_and_rewrite(self, op, rewriter):
                if inserted:
                    return
                new = arith.Constant.int(9, 32)
                inserted.append(new)
                rewriter.insert_op_after_matched(new)

        GreedyPatternRewriter([After()]).rewrite(module)
        fn = module.body.first_op
        assert fn.body.ops[1] is inserted[0]

    def test_erase_matched(self):
        module, b = _module()
        b.insert(arith.Constant.int(1, 32))
        b.insert(func.ReturnOp())

        class EraseConst(RewritePattern):
            op_name = "arith.constant"

            def match_and_rewrite(self, op, rewriter):
                if not op.results[0].has_uses:
                    rewriter.erase_matched_op()

        GreedyPatternRewriter([EraseConst()]).rewrite(module)
        assert not [op for op in module.walk() if op.name == "arith.constant"]

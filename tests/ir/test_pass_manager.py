"""Pass manager, registry and instrumentation tests."""

import pytest

from repro.dialects import arith, builtin, func
from repro.ir import (
    Builder,
    Instrumentation,
    IRError,
    ModulePass,
    PassManager,
    PipelineParseError,
    get_pass,
    parse_pipeline,
    registered_passes,
)
from repro.ir.types import FunctionType


class AddConstantPass(ModulePass):
    name = "test-add-constant"

    def apply(self, module):
        fn = module.body.first_op
        Builder.at_start(fn.body).insert(arith.Constant.index(9))


class BreakingPass(ModulePass):
    name = "test-breaking"

    def apply(self, module):
        fn = module.body.first_op
        # produce invalid IR: terminator not last
        fn.body.add_op(arith.Constant.index(1))


def _module():
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType([], []))
    module.body.add_op(fn)
    fn.body.add_op(func.ReturnOp())
    return module


class TestPassManager:
    def test_runs_in_order(self):
        module = _module()
        pm = PassManager()
        pm.add(AddConstantPass(), AddConstantPass())
        pm.run(module)
        fn = module.body.first_op
        assert [op.name for op in fn.body.ops[:2]] == ["arith.constant"] * 2

    def test_verify_between_passes(self):
        module = _module()
        pm = PassManager(verify_each=True)
        pm.add(BreakingPass())
        with pytest.raises(IRError, match="test-breaking"):
            pm.run(module)

    def test_no_verify(self):
        module = _module()
        pm = PassManager(verify_each=False)
        pm.add(BreakingPass())
        pm.run(module)  # no exception: verification disabled

    def test_pass_names(self):
        pm = PassManager()
        pm.add(AddConstantPass())
        assert pm.pass_names == ["test-add-constant"]


class TestInstrumentation:
    def test_pass_traces_recorded(self):
        module = _module()
        instr = Instrumentation(capture_ir=True)
        pm = PassManager(instrumentation=instr)
        pm.add(AddConstantPass())
        pm.run(module)
        assert len(instr.pass_traces) == 1
        trace = instr.pass_traces[0]
        assert trace.pass_name == "test-add-constant"
        assert trace.duration_s >= 0
        assert "arith.constant" not in trace.ir_before
        assert "arith.constant" in trace.ir_after

    def test_no_ir_capture_by_default(self):
        module = _module()
        instr = Instrumentation()
        pm = PassManager(instrumentation=instr)
        pm.add(AddConstantPass())
        pm.run(module)
        assert instr.pass_traces[0].ir_before is None
        assert instr.pass_traces[0].ir_after is None

    def test_snapshots_and_counters(self):
        module = _module()
        instr = Instrumentation(capture_ir=True)
        instr.snapshot("initial", module)
        instr.count("builds")
        instr.count("builds", 2)
        assert instr.stage_names() == ["initial"]
        assert "func.func" in instr.stage("initial")
        assert instr.counters["builds"] == 3
        with pytest.raises(KeyError):
            instr.stage("no-such-stage")

    def test_snapshot_noop_without_capture(self):
        instr = Instrumentation()
        assert instr.snapshot("x", _module()) is None
        assert instr.snapshots == []


class TestRegistry:
    def test_registered_pipeline_passes(self):
        names = registered_passes()
        for expected in (
            "fir-to-core",
            "lower-omp-mapped-data",
            "lower-omp-target-region",
            "extract-device-module",
            "lower-omp-to-hls",
            "lower-hls-to-func",
            "canonicalize",
            "cse",
            "dce",
        ):
            assert expected in names

    def test_get_pass_instantiates(self):
        p = get_pass("canonicalize")
        assert p.name == "canonicalize"

    def test_get_pass_with_options(self):
        p = get_pass("lower-omp-to-hls", reduction_copies="4", simdlen=2)
        assert p.reduction_copies == 4
        assert p.simdlen == 2

    def test_get_unknown_raises(self):
        with pytest.raises(PipelineParseError, match="no-such-pass"):
            get_pass("no-such-pass")

    def test_parse_pipeline(self):
        pm = parse_pipeline("canonicalize, cse,dce")
        assert pm.pass_names == ["canonicalize", "cse", "dce"]

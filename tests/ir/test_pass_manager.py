"""Pass manager & registry tests."""

import pytest

from repro.dialects import arith, builtin, func
from repro.ir import (
    Builder,
    IRError,
    ModulePass,
    PassManager,
    get_pass,
    parse_pipeline,
    registered_passes,
    verify,
)
from repro.ir.types import FunctionType


class AddConstantPass(ModulePass):
    name = "test-add-constant"

    def apply(self, module):
        fn = module.body.first_op
        Builder.at_start(fn.body).insert(arith.Constant.index(9))


class BreakingPass(ModulePass):
    name = "test-breaking"

    def apply(self, module):
        fn = module.body.first_op
        # produce invalid IR: terminator not last
        fn.body.add_op(arith.Constant.index(1))


def _module():
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType([], []))
    module.body.add_op(fn)
    fn.body.add_op(func.ReturnOp())
    return module


class TestPassManager:
    def test_runs_in_order(self):
        module = _module()
        pm = PassManager()
        pm.add(AddConstantPass(), AddConstantPass())
        pm.run(module)
        fn = module.body.first_op
        assert [op.name for op in fn.body.ops[:2]] == ["arith.constant"] * 2

    def test_traces_recorded(self):
        module = _module()
        pm = PassManager(capture_ir=True)
        pm.add(AddConstantPass())
        pm.run(module)
        assert len(pm.traces) == 1
        assert pm.traces[0].pass_name == "test-add-constant"
        assert "arith.constant" in pm.traces[0].ir_after

    def test_verify_between_passes(self):
        module = _module()
        pm = PassManager(verify_each=True)
        pm.add(BreakingPass())
        with pytest.raises(IRError, match="test-breaking"):
            pm.run(module)

    def test_no_verify(self):
        module = _module()
        pm = PassManager(verify_each=False)
        pm.add(BreakingPass())
        pm.run(module)  # no exception: verification disabled

    def test_pass_names(self):
        pm = PassManager()
        pm.add(AddConstantPass())
        assert pm.pass_names == ["test-add-constant"]


class TestRegistry:
    def test_registered_pipeline_passes(self):
        names = registered_passes()
        for expected in (
            "fir-to-core",
            "lower-omp-mapped-data",
            "lower-omp-target-region",
            "extract-device-module",
            "lower-omp-to-hls",
            "lower-hls-to-func",
            "canonicalize",
            "cse",
            "dce",
        ):
            assert expected in names

    def test_get_pass_instantiates(self):
        p = get_pass("canonicalize")
        assert p.name == "canonicalize"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_pass("no-such-pass")

    def test_parse_pipeline(self):
        pm = parse_pipeline("canonicalize, cse,dce")
        assert pm.pass_names == ["canonicalize", "cse", "dce"]

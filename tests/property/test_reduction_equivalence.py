"""Reduction fast path: bit-level equivalence with the scalar interpreter.

The vectorized reduction paths (iter_args combiners and the round-robin
memref accumulator form) promise the *same float32 bits* as the scalar
walk: ordered ``ufunc.accumulate``/``ufunc.at`` folding preserves the
per-cell combine order, so no reassociation-induced rounding differences
can appear.  These properties pin that guarantee, including empty and
single-trip loops and the scalar-short-loop fallback boundary.

NaN inputs and signed-zero min/max ties are documented exclusions (the
scalar engine uses Python ``min``/``max``, whose NaN/−0.0 tie behaviour
differs from ``np.minimum``/``np.maximum``); the strategies below generate
finite values and normalise −0.0.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, builtin, func, memref, scf
from repro.ir import Builder, Interpreter
from repro.ir import vectorize
from repro.ir.types import FunctionType, MemRefType, f32


@pytest.fixture(autouse=True)
def _low_vector_threshold(monkeypatch):
    """Exercise the vectorized paths even on tiny loops (the production
    threshold of 64 would route short property cases to the scalar
    engine, testing nothing)."""
    monkeypatch.setattr(vectorize, "_MIN_TRIPS", 2)


def _finite_f32_list(min_size=0, max_size=130, bound=1e5):
    return st.lists(
        st.floats(
            min_value=-bound,
            max_value=bound,
            allow_nan=False,
            width=32,
        ).map(lambda v: v + 0.0),  # normalise -0.0 to +0.0
        min_size=min_size,
        max_size=max_size,
    )


def build_iter_reduction(n: int, op_cls):
    """func @f(%x: memref<n x f32>, %init: f32) -> f32 reducing with
    ``op_cls`` over iter_args."""
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType([MemRefType(f32, [n]), f32], [f32]))
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    x, init = fn.body.args
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step, [init]))
    inner = Builder.at_end(loop.body)
    acc = loop.body.args[1]
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    combined = inner.insert(op_cls(acc, xv)).results[0]
    inner.insert(scf.Yield([combined]))
    b.insert(func.ReturnOp([loop.results[0]]))
    return module


def build_round_robin(n: int, ncopies: int):
    """func @f(%x: memref<n x f32>, %p: memref<ncopies x f32>) with the
    round-robin accumulator body ``p[i mod ncopies] += x[i]`` — the shape
    the reduction-copies rewrite emits."""
    module = builtin.ModuleOp()
    fn = func.FuncOp(
        "f",
        FunctionType([MemRefType(f32, [n]), MemRefType(f32, [ncopies])], []),
    )
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    x, p = fn.body.args
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    iv = loop.induction_var
    copies = inner.insert(arith.Constant.index(ncopies)).results[0]
    slot = inner.insert(arith.RemSI(iv, copies)).results[0]
    pv = inner.insert(memref.Load(p, [slot])).results[0]
    xv = inner.insert(memref.Load(x, [iv])).results[0]
    combined = inner.insert(arith.AddF(pv, xv)).results[0]
    inner.insert(memref.Store(combined, p, [slot]))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module


def build_rank0_accumulator(n: int, op_cls):
    """func @f(%x: memref<n x f32>, %s: memref<f32>) with a rank-0
    accumulator cell: ``s[] = combine(s[], x[i])``."""
    module = builtin.ModuleOp()
    fn = func.FuncOp(
        "f", FunctionType([MemRefType(f32, [n]), MemRefType(f32, [])], [])
    )
    module.body.add_op(fn)
    b = Builder.at_end(fn.body)
    x, s = fn.body.args
    lb = b.insert(arith.Constant.index(0)).results[0]
    ub = b.insert(arith.Constant.index(n)).results[0]
    step = b.insert(arith.Constant.index(1)).results[0]
    loop = b.insert(scf.For(lb, ub, step))
    inner = Builder.at_end(loop.body)
    sv = inner.insert(memref.Load(s, [])).results[0]
    xv = inner.insert(memref.Load(x, [loop.induction_var])).results[0]
    combined = inner.insert(op_cls(sv, xv)).results[0]
    inner.insert(memref.Store(combined, s, []))
    inner.insert(scf.Yield())
    b.insert(func.ReturnOp())
    return module


def _scalar(module, *args):
    interp = Interpreter(module, compiled=False, vectorize=False)
    result = interp.call("f", *args)
    return result, interp.steps


def _fast(module, *args):
    interp = Interpreter(module)  # compiled + vectorized (the default)
    result = interp.call("f", *args)
    return result, interp.steps


_COMBINERS = {
    "add": arith.AddF,
    "mul": arith.MulF,
    "min": arith.MinF,
    "max": arith.MaxF,
}


@pytest.mark.parametrize("kind", sorted(_COMBINERS))
@given(values=_finite_f32_list(), init=st.floats(-1e5, 1e5, width=32))
@settings(max_examples=25, deadline=None)
def test_iter_args_reduction_bit_identical(kind, values, init):
    op_cls = _COMBINERS[kind]
    n = len(values)
    x = np.array(values, dtype=np.float32)
    init32 = float(np.float32(init + 0.0))

    (got,), fast_steps = _fast(build_iter_reduction(n, op_cls), x, init32)
    (want,), scalar_steps = _scalar(build_iter_reduction(n, op_cls), x, init32)

    assert np.float32(got).tobytes() == np.float32(want).tobytes()
    assert fast_steps == scalar_steps


@given(
    values=_finite_f32_list(min_size=0, max_size=200),
    ncopies=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=25, deadline=None)
def test_round_robin_accumulator_bit_identical(values, ncopies):
    n = len(values)
    x = np.array(values, dtype=np.float32)
    rng = np.random.default_rng(n + ncopies)
    p_init = rng.standard_normal(ncopies).astype(np.float32)

    p_fast = p_init.copy()
    _, fast_steps = _fast(build_round_robin(n, ncopies), x, p_fast)
    p_scalar = p_init.copy()
    _, scalar_steps = _scalar(build_round_robin(n, ncopies), x, p_scalar)

    assert p_fast.tobytes() == p_scalar.tobytes()
    assert fast_steps == scalar_steps


@pytest.mark.parametrize("kind", ["add", "min", "max"])
@given(values=_finite_f32_list(max_size=150))
@settings(max_examples=20, deadline=None)
def test_rank0_accumulator_bit_identical(kind, values):
    op_cls = _COMBINERS[kind]
    n = len(values)
    x = np.array(values, dtype=np.float32)

    s_fast = np.array(1.5, dtype=np.float32)
    _, fast_steps = _fast(build_rank0_accumulator(n, op_cls), x, s_fast)
    s_scalar = np.array(1.5, dtype=np.float32)
    _, scalar_steps = _scalar(build_rank0_accumulator(n, op_cls), x, s_scalar)

    assert s_fast.tobytes() == s_scalar.tobytes()
    assert fast_steps == scalar_steps


@pytest.mark.parametrize("n", [0, 1, 2, 63, 64, 65])
def test_trip_count_boundaries(n):
    """Empty, single-trip and threshold-boundary loops agree exactly
    (with the production threshold restored)."""
    vectorize._MIN_TRIPS = 64  # undo the fixture for this test
    x = (np.arange(n, dtype=np.float32) - n / 3).astype(np.float32)

    (got,), _ = _fast(build_iter_reduction(n, arith.AddF), x, 0.25)
    (want,), _ = _scalar(build_iter_reduction(n, arith.AddF), x, 0.25)
    assert np.float32(got).tobytes() == np.float32(want).tobytes()

    s_fast = np.array(0.0, dtype=np.float32)
    _fast(build_rank0_accumulator(n, arith.AddF), x, s_fast)
    s_scalar = np.array(0.0, dtype=np.float32)
    _scalar(build_rank0_accumulator(n, arith.AddF), x, s_scalar)
    assert s_fast.tobytes() == s_scalar.tobytes()


def test_reduction_modes_recognised():
    """The analysis classifies the three shapes as intended."""
    from repro.ir.vectorize import loop_vector_mode

    module = build_iter_reduction(128, arith.AddF)
    (loop,) = [op for op in module.walk() if op.name == "scf.for"]
    assert loop_vector_mode(loop)[0] == "iter_reduction"

    module = build_round_robin(128, 8)
    (loop,) = [op for op in module.walk() if op.name == "scf.for"]
    assert loop_vector_mode(loop)[0] == "memref_reduction"

    module = build_rank0_accumulator(128, arith.MaxF)
    (loop,) = [op for op in module.walk() if op.name == "scf.for"]
    assert loop_vector_mode(loop)[0] == "memref_reduction"

"""Cross-tier conformance: every gallery workload, every engine tier.

The execution engine has three tiers (scalar interpreter, block-JIT,
NumPy loop vectorization — ROADMAP "Performance architecture").  This
suite runs every registered workload under all four
``compiled × vectorize`` combinations and asserts

* bit-identical output buffers (and bit-exact match with the workload's
  NumPy reference),
* identical ``Interpreter.steps`` accounting, and
* identical modelled ``device_time_ms`` / ``kernel_cycles``

so no engine fast path can silently change results or the paper's
modelled numbers.
"""

import numpy as np
import pytest

from repro.workloads import all_workloads, get_workload

#: (compiled, vectorize) — scalar ground truth first.
TIERS = ((False, False), (False, True), (True, False), (True, True))

#: workloads whose scalar-tier smoke run is multi-second (the tiled GEMM
#: interprets ~4M ops twice under vectorize=False)
_SLOW_SCALAR = {"gemm"}

_PROGRAMS: dict[str, object] = {}


def _program(name: str):
    if name not in _PROGRAMS:
        _PROGRAMS[name] = get_workload(name).compile()
    return _PROGRAMS[name]


def _workload_params():
    for workload in all_workloads():
        marks = (
            [pytest.mark.slow] if workload.name in _SLOW_SCALAR else []
        )
        yield pytest.param(workload.name, marks=marks)


@pytest.mark.parametrize("name", _workload_params())
def test_tiers_bit_identical(name):
    workload = get_workload(name)
    program = _program(name)
    observed = []
    for compiled, vectorize in TIERS:
        result, instance = workload.run(
            program, compiled=compiled, vectorize=vectorize
        )
        # every tier matches the NumPy reference bit for bit
        workload.check(instance)
        outputs = {
            pos: np.asarray(arg).tobytes()
            for pos, arg in instance.outputs().items()
        }
        observed.append(((compiled, vectorize), result, outputs))

    _, scalar_result, scalar_outputs = observed[0]
    for (tier, result, outputs) in observed[1:]:
        assert outputs == scalar_outputs, f"tier {tier}: outputs differ"
        assert result.interpreter_steps == scalar_result.interpreter_steps, (
            f"tier {tier}: steps {result.interpreter_steps} != "
            f"{scalar_result.interpreter_steps}"
        )
        assert result.device_time_ms == scalar_result.device_time_ms, (
            f"tier {tier}: device_time_ms diverged"
        )
        assert result.kernel_cycles == scalar_result.kernel_cycles, (
            f"tier {tier}: kernel_cycles diverged"
        )
        assert result.launches == scalar_result.launches


def test_histogram_scatter_kernels_vectorize():
    """Guard against silent scalar fallback: the histogram's two device
    loops must classify as the collision-tolerant ``ufunc.at`` reduction
    and the injectivity-proved scatter store — a regression here would
    keep this suite green (the scalar walk is always correct) while
    silently losing the fast tier."""
    from repro.ir.vectorize import loop_vector_mode

    program = _program("histogram")
    modes = [
        loop_vector_mode(op)[0]
        for op in program.device_module.walk()
        if op.name == "scf.for"
    ]
    assert sorted(m for m in modes if m is not None) == [
        "memref_reduction", "scatter_store",
    ]


def _device_root_mode(name: str) -> str | None:
    """Vectorizer classification of the outermost device loop."""
    from repro.ir.vectorize import loop_vector_mode

    program = _program(name)
    for op in program.device_module.walk():
        if op.name == "scf.for":
            return loop_vector_mode(op)[0]
    return None


@pytest.mark.parametrize(
    "name, expected_mode",
    [
        ("heat3d", "nest_elementwise"),
        ("batched_gemm", "nest_reduction"),
        ("jacobi2d", "nest_elementwise"),
    ],
)
def test_rank_n_nests_vectorize_whole_space(name, expected_mode):
    """Guard against silent scalar fallback for ``collapse(n)`` nests:
    the outermost device loop of each nest workload must classify as a
    whole-space nest evaluation — heat3d's rank-3 elementwise stencil,
    batched_gemm's rank-3 nest with the in-place k reduction folded
    along the innermost dim, and jacobi2d's rank-2 stencil."""
    assert _device_root_mode(name) == expected_mode


@pytest.mark.parametrize(
    "name, expected_modes",
    [
        # outer row loop is the segmented nest; the inner reduction loop
        # classifies on its own but is subsumed by the whole-space plan
        ("spmv", ["memref_reduction", "nest_segmented"]),
        # both device loops are runtime-bounded rank-1 spans
        ("sgesl", ["nest_segmented", "nest_segmented"]),
    ],
)
def test_segmented_kernels_vectorize(name, expected_modes):
    """Guard against silent scalar fallback for the segmented tier:
    spmv's CSR row loop and sgesl's runtime-bounded solve loops must
    classify ``nest_segmented`` — before PR 7 both ran the scalar walk
    (spmv's imperfect nest bailed; sgesl's runtime trip counts never
    reached the ``_MIN_TRIPS`` floor check) and this suite stayed green
    while the fast tier was silently lost."""
    from repro.ir.vectorize import loop_vector_mode

    program = _program(name)
    modes = [
        loop_vector_mode(op)[0]
        for op in program.device_module.walk()
        if op.name == "scf.for"
    ]
    assert sorted(m for m in modes if m is not None) == expected_modes


def test_simdlen_unroll_pair_stitches_back_whole_space():
    """DSE sweeps at ``simdlen > 1`` split each loop into a chunked main
    loop plus a remainder; the nest planner must stitch the pair back
    into one whole-space plan (classifying the *root*) instead of
    dropping to per-row dispatch — and the stitched run must stay bit
    identical to the scalar walk in outputs and modelled metrics."""
    from repro.ir.pass_manager import Instrumentation
    from repro.ir.vectorize import loop_vector_mode
    from repro.session import KernelOverrides, Session

    workload = get_workload("jacobi2d")
    session = Session(workload.source, instrumentation=Instrumentation())
    program = session.program(KernelOverrides(simdlen=4))
    root = next(
        op for op in program.device_module.walk() if op.name == "scf.for"
    )
    mode, plan = loop_vector_mode(root)
    assert mode == "nest_elementwise"
    assert any(level.stitch is not None for level in plan.chain)

    observed = []
    for compiled, vectorize in TIERS:
        result, instance = workload.run(
            program, compiled=compiled, vectorize=vectorize, seed=3
        )
        workload.check(instance)
        outputs = {
            pos: np.asarray(arg).tobytes()
            for pos, arg in instance.outputs().items()
        }
        observed.append((result, outputs))
    base_result, base_outputs = observed[0]
    for result, outputs in observed[1:]:
        assert outputs == base_outputs
        assert result.interpreter_steps == base_result.interpreter_steps
        assert result.device_time_ms == base_result.device_time_ms
        assert result.kernel_cycles == base_result.kernel_cycles


@pytest.mark.parametrize(
    "name", [w.name for w in all_workloads() if w.name not in _SLOW_SCALAR]
)
def test_fresh_seed_still_conforms(name):
    """A second seed (different data, same shapes) also holds across the
    two extreme tiers — guards against data-dependent fast-path bugs."""
    workload = get_workload(name)
    program = _program(name)
    result_scalar, inst_scalar = workload.run(
        program, seed=1, compiled=False, vectorize=False
    )
    result_fast, inst_fast = workload.run(
        program, seed=1, compiled=True, vectorize=True
    )
    for pos in inst_scalar.expected:
        assert (
            np.asarray(inst_scalar.args[pos]).tobytes()
            == np.asarray(inst_fast.args[pos]).tobytes()
        )
    assert result_scalar.interpreter_steps == result_fast.interpreter_steps
    assert result_scalar.kernel_cycles == result_fast.kernel_cycles

"""Property tests: offloaded programs compute what NumPy computes.

These drive the *entire* pipeline (frontend, device-dialect passes, HLS
lowering, simulated execution) on randomized programs/data and compare
against direct NumPy evaluation — the strongest end-to-end invariant the
reproduction has.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import compile_fortran

ELEMENTWISE_TEMPLATE = """
subroutine apply(x, y, n)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(out) :: y(n)
  integer :: i
!$omp target parallel do{simd}
  do i = 1, n
    y(i) = {expr}
  end do
!$omp end target parallel do{simd}
end subroutine apply
"""

#: (fortran expression, numpy equivalent)
EXPRESSIONS = [
    ("x(i) + 1.0", lambda x, i: x + np.float32(1.0)),
    ("2.0 * x(i) - 3.0", lambda x, i: np.float32(2.0) * x - np.float32(3.0)),
    ("x(i) * x(i)", lambda x, i: x * x),
    ("abs(x(i))", lambda x, i: np.abs(x)),
    ("max(x(i), 0.0)", lambda x, i: np.maximum(x, np.float32(0.0))),
    ("x(i) / 2.0", lambda x, i: x / np.float32(2.0)),
    ("sqrt(abs(x(i)))", lambda x, i: np.sqrt(np.abs(x))),
    ("x(i) + real(i)", lambda x, i: x + i.astype(np.float32)),
]


@pytest.mark.parametrize("simd", ["", " simd simdlen(4)"])
@pytest.mark.parametrize("expr,reference", EXPRESSIONS)
def test_elementwise_expressions(expr, reference, simd):
    source = ELEMENTWISE_TEMPLATE.format(expr=expr, simd=simd)
    program = compile_fortran(source)
    n = 97  # deliberately not a multiple of the simd factor
    rng = np.random.default_rng(13)
    x = rng.standard_normal(n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)
    program.executor().run("apply", x, y, np.array(n, np.int32))
    i = np.arange(1, n + 1)
    expected = reference(x, i).astype(np.float32)
    assert np.allclose(y, expected, rtol=1e-6, atol=1e-6)


@given(
    n=st.integers(min_value=1, max_value=300),
    a=st.floats(
        min_value=-100, max_value=100, allow_nan=False, width=32
    ),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_saxpy_any_size_and_scale(n, a, seed):
    """SAXPY through the whole flow == NumPy, for arbitrary N/a/data."""
    from repro.workloads import SAXPY_SOURCE

    program = _cached_saxpy()
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    expected = (y + np.float32(a) * x).astype(np.float32)
    program.executor().run(
        "saxpy", np.array(a, np.float32), x, y, np.array(n, np.int32)
    )
    assert y.tobytes() == expected.tobytes()


_SAXPY_CACHE = []


def _cached_saxpy():
    if not _SAXPY_CACHE:
        from repro.workloads import SAXPY_SOURCE

        _SAXPY_CACHE.append(compile_fortran(SAXPY_SOURCE))
    return _SAXPY_CACHE[0]


@given(n=st.integers(min_value=2, max_value=48), seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_sgesl_random_systems(n, seed):
    """Random well-conditioned systems solve correctly end-to-end."""
    from repro.workloads import SGESL_SOURCE, SgeslCase, sgesl_reference

    program = _cached_sgesl()
    case = SgeslCase(n, seed=seed)
    a, lu, ipvt, b = case.system()
    x = b.copy()
    program.executor().run(
        "sgesl", lu.copy(), x, (ipvt + 1).astype(np.int64),
        np.array(n, np.int32),
    )
    expected = sgesl_reference(lu, ipvt, b)
    assert np.allclose(x, expected, rtol=1e-3, atol=1e-3)


_SGESL_CACHE = []


def _cached_sgesl():
    if not _SGESL_CACHE:
        from repro.workloads import SGESL_SOURCE

        _SGESL_CACHE.append(compile_fortran(SGESL_SOURCE))
    return _SGESL_CACHE[0]

"""Property: the device-dialect data lowering implements OpenMP 5 mapping
semantics under randomized data-region nesting.

For a random nesting depth of ``target data`` regions around two offloaded
loops, the final array contents must always equal the sequential result,
and transfer counts must shrink monotonically as regions cover more of
the offloads (residency!).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import compile_fortran


def _source(with_region: bool, update: bool) -> str:
    open_region = "!$omp target data map(tofrom: a)\n" if with_region else ""
    close_region = "!$omp end target data\n" if with_region else ""
    update_stmt = "!$omp target update from(a)\n" if (with_region and update) else ""
    return f"""
subroutine work(a, n)
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
{open_region}!$omp target parallel do
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
!$omp end target parallel do
{update_stmt}!$omp target parallel do
  do i = 1, n
    a(i) = a(i) * 3.0
  end do
!$omp end target parallel do
{close_region}end subroutine work
"""


@given(
    with_region=st.booleans(),
    update=st.booleans(),
    n=st.integers(min_value=1, max_value=400),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=24, deadline=None)
def test_any_nesting_preserves_semantics(with_region, update, n, seed):
    program = compile_fortran(_source(with_region, update))
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(n).astype(np.float32)
    expected = ((a + np.float32(1.0)) * np.float32(3.0)).astype(np.float32)
    program.executor().run("work", a, np.array(n, np.int32))
    assert a.tobytes() == expected.tobytes()


def test_region_reduces_traffic_update_refreshes_host():
    n = 500
    rng = np.random.default_rng(3)
    base = rng.standard_normal(n).astype(np.float32)

    def run(with_region, update):
        program = compile_fortran(_source(with_region, update))
        a = base.copy()
        result = program.executor().run("work", a, np.array(n, np.int32))
        return a, result

    _, bare = run(False, False)
    _, scoped = run(True, False)
    _, scoped_update = run(True, True)
    # residency saves round trips
    assert scoped.bytes_h2d < bare.bytes_h2d
    assert scoped.bytes_d2h < bare.bytes_d2h
    # a target update adds exactly one array-sized D2H transfer
    assert scoped_update.bytes_d2h == scoped.bytes_d2h + n * 4


def test_enter_exit_data_pair():
    """Unstructured regions behave like the structured one."""
    source = """
subroutine work(a, n)
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
!$omp target enter data map(to: a)
!$omp target parallel do
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
!$omp end target parallel do
!$omp target exit data map(from: a)
end subroutine work
"""
    program = compile_fortran(source)
    n = 300
    a = np.zeros(n, dtype=np.float32)
    result = program.executor().run("work", a, np.array(n, np.int32))
    assert np.all(a == 1.0)
    # enter data: one H2D of a; offload: no re-transfer of a;
    # exit data: one D2H of a
    assert result.bytes_h2d == n * 4 + 4  # + the implicit scalar n
    assert result.bytes_d2h == n * 4

"""Hypothesis fuzz: OpenMP directives round-trip without loss.

Random well-formed :class:`~repro.frontend.directives.Directive` values
are printed with ``print_directive``, pushed through the real frontend
path (lexer sentinel extraction, then ``parse_directive``), and must
come back structurally identical — no clause, variable list, operator
or integer parameter may be dropped or reordered.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.ast_nodes import MapClause, OmpClauses, ReductionClause
from repro.frontend.directives import (
    Directive,
    parse_directive,
    print_directive,
)
from repro.frontend.lexer import TokenKind, tokenize

idents = st.from_regex(r"[a-z][a-z0-9_]{0,9}", fullmatch=True)
var_lists = st.lists(idents, min_size=1, max_size=4, unique=True)

map_clauses = st.builds(
    MapClause,
    st.sampled_from(("to", "from", "tofrom", "alloc")),
    var_lists,
)
reduction_clauses = st.builds(
    ReductionClause,
    st.sampled_from(("+", "*", "max", "min")),
    var_lists,
)


def _clauses(
    with_maps: bool = True,
    with_reductions: bool = False,
    with_collapse: bool = False,
) -> st.SearchStrategy[OmpClauses]:
    return st.builds(
        OmpClauses,
        maps=st.lists(map_clauses, max_size=3) if with_maps else st.just([]),
        reductions=(
            st.lists(reduction_clauses, max_size=2)
            if with_reductions
            else st.just([])
        ),
        simdlen=st.none() | st.integers(1, 64),
        num_threads=st.none() | st.integers(1, 128),
        device=st.none() | st.integers(0, 3),
        # collapse is only legal on loop directives (the parser rejects
        # it elsewhere), so only loop-shaped draws may carry one
        collapse=(
            st.none() | st.integers(1, 4) if with_collapse else st.none()
        ),
    )


@st.composite
def directives(draw) -> Directive:
    kind = draw(
        st.sampled_from(
            (
                "target",
                "target data",
                "target enter data",
                "target exit data",
                "target update",
                "parallel do",
            )
        )
    )
    directive = Directive(construct=kind)
    if kind == "target":
        directive.parallel_do = draw(st.booleans())
        directive.simd = draw(st.booleans())
        directive.clauses = draw(
            _clauses(
                with_reductions=directive.parallel_do,
                with_collapse=directive.parallel_do,
            )
        )
    elif kind == "parallel do":
        directive.parallel_do = True
        directive.simd = draw(st.booleans())
        directive.clauses = draw(
            _clauses(with_maps=False, with_reductions=True, with_collapse=True)
        )
    elif kind == "target update":
        directive.to_vars = draw(var_lists)
        directive.from_vars = draw(st.just([]) | var_lists)
    else:
        directive.clauses = draw(_clauses())
    return directive


@st.composite
def end_directives(draw) -> Directive:
    kind = draw(st.sampled_from(("target", "target data", "parallel do")))
    directive = Directive(construct=kind, is_end=True)
    if kind == "target":
        directive.parallel_do = draw(st.booleans())
        directive.simd = draw(st.booleans())
    elif kind == "parallel do":
        directive.parallel_do = True
        directive.simd = draw(st.booleans())
    return directive


def _through_lexer(text: str) -> str:
    """Extract the directive text the way the real frontend does."""
    tokens = tokenize(f"!$omp {text}\n")
    assert tokens[0].kind == TokenKind.OMP_DIRECTIVE
    return tokens[0].text


@given(directives())
@settings(max_examples=200, deadline=None)
def test_directive_roundtrip(directive):
    text = print_directive(directive)
    reparsed = parse_directive(_through_lexer(text))
    assert dataclasses.asdict(reparsed) == dataclasses.asdict(directive)


@given(end_directives())
@settings(max_examples=50, deadline=None)
def test_end_directive_roundtrip(directive):
    text = print_directive(directive)
    reparsed = parse_directive(_through_lexer(text))
    assert dataclasses.asdict(reparsed) == dataclasses.asdict(directive)


@given(directives())
@settings(max_examples=50, deadline=None)
def test_printing_is_stable(directive):
    """print(parse(print(d))) == print(d) — printing is a fixed point."""
    once = print_directive(directive)
    twice = print_directive(parse_directive(_through_lexer(once)))
    assert once == twice

"""HLS dialect structure tests (the [20] substrate)."""

import pytest

from repro.dialects import arith, builtin, func, hls
from repro.ir import Builder, IRError, print_op, verify
from repro.ir.types import FunctionType, MemRefType, f32


def _kernel():
    module = builtin.ModuleOp()
    fn = func.FuncOp("k", FunctionType([MemRefType(f32, [16], 1)], []))
    module.body.add_op(fn)
    return module, fn, Builder.at_end(fn.body)


class TestInterface:
    def test_listing4_shape(self):
        """Printed form matches the paper's Listing 4 idiom."""
        module, fn, b = _kernel()
        code = b.insert(arith.Constant.int(hls.M_AXI, 32)).results[0]
        proto = b.insert(hls.AxiProtocolOp(code)).results[0]
        iface = b.insert(hls.InterfaceOp(fn.body.args[0], proto, "gmem0"))
        b.insert(func.ReturnOp())
        verify(module)
        text = print_op(module)
        assert '"hls.axi_protocol"' in text
        assert "!hls.axi_protocol" in text
        assert 'bundle = "gmem0"' in text
        assert iface.bundle == "gmem0"
        assert iface.arg is fn.body.args[0]

    def test_protocol_names(self):
        assert hls.PROTOCOL_NAMES[hls.M_AXI] == "m_axi"
        assert hls.PROTOCOL_NAMES[hls.AXILITE] == "s_axilite"


class TestPipelineAndUnroll:
    def test_static_ii(self):
        _, _, b = _kernel()
        ii = b.insert(arith.Constant.int(3, 32)).results[0]
        pipeline = b.insert(hls.PipelineOp(ii))
        assert pipeline.static_ii() == 3

    def test_dynamic_ii_unknown(self):
        module, fn, b = _kernel()
        fn2 = func.FuncOp("g", FunctionType([__import__("repro.ir.types", fromlist=["i32"]).i32], []))
        module.body.add_op(fn2)
        b2 = Builder.at_end(fn2.body)
        pipeline = b2.insert(hls.PipelineOp(fn2.body.args[0]))
        assert pipeline.static_ii() is None

    def test_unroll_factor(self):
        _, _, b = _kernel()
        unroll = b.insert(hls.UnrollOp(10))
        assert unroll.factor == 10

    def test_unroll_rejects_bad_factor(self):
        with pytest.raises(IRError):
            hls.UnrollOp(0)


class TestStreams:
    def test_stream_interp(self):
        """Runtime-library stream read/write round-trips values."""

        from repro.ir import Interpreter
        from repro.ir.types import FunctionType as FT

        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FT([], [f32]))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        # a stream value is any list-like; supply via extra impl
        from repro.dialects.hls import StreamReadOp, StreamWriteOp, stream

        class FakeStreamOp(func.CallOp):
            pass

        # build: write 2.5 to a stream, read it back
        make = b.insert(func.CallOp("make_stream", [], [stream]))
        value = b.insert(arith.Constant.float(2.5, 32)).results[0]
        b.insert(StreamWriteOp(make.results[0], value))
        read = b.insert(StreamReadOp(make.results[0], f32))
        b.insert(func.ReturnOp([read.results[0]]))

        def run_make(interp, op, env):
            interp.set_results(op, env, [[]])
            return None

        interp = Interpreter(module, extra_impls={"func.call": None})
        # simpler: register a proper handler for the call
        def call_handler(interp_, op, env):
            callee = op.attributes["callee"].symbol
            if callee == "make_stream":
                interp_.set_results(op, env, [[]])
                return None
            raise AssertionError(callee)

        interp = Interpreter(module, extra_impls={"func.call": call_handler})
        assert interp.call("f") == (pytest.approx(2.5),)

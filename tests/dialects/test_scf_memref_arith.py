"""Structural validation for scf/memref/arith op constructors."""

import pytest

from repro.dialects import arith, memref, scf
from repro.ir import Block, IRError
from repro.ir.types import MemRefType, f32, i32, index


def _c(v):
    block = Block()
    return block.add_op(arith.Constant.index(v)).results[0]


class TestArithValidation:
    def test_binary_type_mismatch(self):
        block = Block()
        a = block.add_op(arith.Constant.index(1)).results[0]
        b = block.add_op(arith.Constant.int(1, 32)).results[0]
        op = arith.AddI(a, b)
        with pytest.raises(IRError, match="types differ"):
            op.verify_()

    def test_bad_cmp_predicate(self):
        a, b = _c(1), _c(2)
        with pytest.raises(IRError, match="predicate"):
            arith.CmpI("weird", a, b)

    def test_constant_type_check(self):
        from repro.ir.attributes import FloatAttr

        op = arith.Constant(FloatAttr(1.0, 32), i32)
        with pytest.raises(IRError):
            op.verify_()

    def test_python_value(self):
        assert arith.Constant.index(5).python_value == 5
        assert arith.Constant.float(2.5, 32).python_value == 2.5

    def test_fastmath_attr(self):
        a, b = _c(1), _c(2)
        block = Block()
        fa = block.add_op(arith.Constant.float(1.0, 32)).results[0]
        fb = block.add_op(arith.Constant.float(2.0, 32)).results[0]
        op = arith.AddF(fa, fb, fastmath="contract")
        from repro.ir.attributes import StringAttr

        assert op.attributes["fastmath"] == StringAttr("contract")


class TestMemrefValidation:
    def test_load_rank_check(self):
        block = Block()
        buf = block.add_op(memref.Alloca(MemRefType(f32, [4, 4]))).results[0]
        idx = _c(0)
        with pytest.raises(IRError, match="rank"):
            memref.Load(buf, [idx])

    def test_store_rank_check(self):
        block = Block()
        buf = block.add_op(memref.Alloca(MemRefType(f32, [4]))).results[0]
        v = block.add_op(arith.Constant.float(0.0, 32)).results[0]
        with pytest.raises(IRError, match="rank"):
            memref.Store(v, buf, [])

    def test_load_requires_memref(self):
        with pytest.raises(IRError, match="memref"):
            memref.Load(_c(1), [])

    def test_alloc_dynamic_size_count(self):
        from repro.ir.types import DYNAMIC

        with pytest.raises(IRError, match="dynamic sizes"):
            memref.Alloc(MemRefType(f32, [DYNAMIC]), [])

    def test_cast_element_type_guard(self):
        block = Block()
        buf = block.add_op(memref.Alloca(MemRefType(f32, [4]))).results[0]
        with pytest.raises(IRError, match="element type"):
            memref.Cast(buf, MemRefType(i32, [4]))

    def test_cast_rank_guard(self):
        from repro.ir.types import DYNAMIC

        block = Block()
        buf = block.add_op(memref.Alloca(MemRefType(f32, [4]))).results[0]
        with pytest.raises(IRError, match="rank"):
            memref.Cast(buf, MemRefType(f32, [DYNAMIC, DYNAMIC]))


class TestScfValidation:
    def test_for_accessors(self):
        lb, ub, step = _c(0), _c(8), _c(1)
        loop = scf.For(lb, ub, step)
        assert loop.lb is lb and loop.ub is ub and loop.step is step
        assert loop.induction_var.type == index
        assert loop.iter_args == ()

    def test_for_with_iter_args(self):
        lb, ub, step = _c(0), _c(8), _c(1)
        init = _c(0)
        loop = scf.For(lb, ub, step, [init])
        assert len(loop.results) == 1
        assert len(loop.body.args) == 2

    def test_for_verify_requires_yield_arity(self):
        lb, ub, step = _c(0), _c(8), _c(1)
        init = _c(0)
        loop = scf.For(lb, ub, step, [init])
        loop.body.add_op(scf.Yield([]))  # wrong arity
        with pytest.raises(IRError, match="arity"):
            loop.verify_()

    def test_if_blocks(self):
        block = Block()
        cond = block.add_op(arith.Constant.bool(True)).results[0]
        if_op = scf.If(cond)
        assert if_op.cond is cond
        assert if_op.then_block is not if_op.else_block

"""FIR dialect tests: structure + Fortran semantics (1-based, inclusive)."""

import numpy as np
import pytest

from repro.dialects import arith, builtin, fir, func
from repro.ir import Builder, Interpreter, verify
from repro.ir.types import FunctionType, MemRefType, f32, i32, index


def _fn(arg_types=(), result_types=()):
    module = builtin.ModuleOp()
    fn = func.FuncOp("f", FunctionType(list(arg_types), list(result_types)))
    module.body.add_op(fn)
    return module, fn, Builder.at_end(fn.body)


class TestStorage:
    def test_alloca_declare_load_store(self):
        module, fn, b = _fn(result_types=[f32])
        cell = b.insert(fir.AllocaOp(MemRefType(f32, []), "x")).results[0]
        declared = b.insert(fir.DeclareOp(cell, "fEx")).results[0]
        v = b.insert(arith.Constant.float(4.5, 32)).results[0]
        b.insert(fir.StoreOp(v, declared))
        out = b.insert(fir.LoadOp(declared)).results[0]
        b.insert(func.ReturnOp([out]))
        verify(module)
        assert Interpreter(module).call("f") == (pytest.approx(4.5),)

    def test_dynamic_alloca(self):
        module, fn, b = _fn(arg_types=[MemRefType(i32, [])], result_types=[index])
        n = b.insert(fir.LoadOp(fn.body.args[0])).results[0]
        n_idx = b.insert(fir.ConvertOp(n, index)).results[0]
        from repro.ir.types import DYNAMIC

        arr = b.insert(
            fir.AllocaOp(MemRefType(f32, [DYNAMIC]), "v", [n_idx])
        ).results[0]
        zero = b.insert(arith.Constant.index(0)).results[0]
        from repro.dialects import memref

        dim = b.insert(memref.Dim(arr, zero)).results[0]
        b.insert(func.ReturnOp([dim]))
        verify(module)
        assert Interpreter(module).call("f", np.array(7, np.int32)) == (7,)


class TestArrays:
    def test_one_based_indexing(self):
        """fir.array_load/store use Fortran 1-based subscripts."""
        module, fn, b = _fn(arg_types=[MemRefType(f32, [3])], result_types=[f32])
        one = b.insert(arith.Constant.int(1, 32)).results[0]
        v = b.insert(arith.Constant.float(9.0, 32)).results[0]
        b.insert(fir.ArrayStoreOp(v, fn.body.args[0], [one]))
        out = b.insert(fir.CoordinateOp(fn.body.args[0], [one])).results[0]
        b.insert(func.ReturnOp([out]))
        verify(module)
        arr = np.zeros(3, np.float32)
        result = Interpreter(module).call("f", arr)
        assert result == (pytest.approx(9.0),)
        assert arr[0] == 9.0  # element #1 is index 0


class TestDoLoop:
    def _sum_loop(self, lb, ub, step):
        module, fn, b = _fn(result_types=[f32])
        acc = b.insert(fir.AllocaOp(MemRefType(f32, []), "s")).results[0]
        zero = b.insert(arith.Constant.float(0.0, 32)).results[0]
        b.insert(fir.StoreOp(zero, acc))
        lbv = b.insert(arith.Constant.index(lb)).results[0]
        ubv = b.insert(arith.Constant.index(ub)).results[0]
        stv = b.insert(arith.Constant.index(step)).results[0]
        loop = b.insert(fir.DoLoopOp(lbv, ubv, stv))
        inner = Builder.at_end(loop.body)
        iv_i32 = inner.insert(fir.ConvertOp(loop.induction_var, i32)).results[0]
        iv_f = inner.insert(fir.ConvertOp(iv_i32, f32)).results[0]
        current = inner.insert(fir.LoadOp(acc)).results[0]
        updated = inner.insert(arith.AddF(current, iv_f)).results[0]
        inner.insert(fir.StoreOp(updated, acc))
        out = b.insert(fir.LoadOp(acc)).results[0]
        b.insert(func.ReturnOp([out]))
        verify(module)
        return Interpreter(module).call("f")[0]

    def test_inclusive_upper_bound(self):
        assert self._sum_loop(1, 4, 1) == pytest.approx(10.0)  # 1+2+3+4

    def test_step(self):
        assert self._sum_loop(1, 5, 2) == pytest.approx(9.0)  # 1+3+5

    def test_negative_step(self):
        assert self._sum_loop(3, 1, -1) == pytest.approx(6.0)  # 3+2+1

    def test_zero_trips(self):
        assert self._sum_loop(5, 1, 1) == pytest.approx(0.0)


class TestIfAndConvert:
    def test_if_branches(self):
        module, fn, b = _fn(arg_types=[MemRefType(i32, [])], result_types=[i32])
        v = b.insert(fir.LoadOp(fn.body.args[0])).results[0]
        zero = b.insert(arith.Constant.int(0, 32)).results[0]
        cond = b.insert(arith.CmpI("sgt", v, zero)).results[0]
        out = b.insert(fir.AllocaOp(MemRefType(i32, []), "r")).results[0]
        if_op = b.insert(fir.IfOp(cond))
        tb = Builder.at_end(if_op.then_block)
        one = tb.insert(arith.Constant.int(1, 32)).results[0]
        tb.insert(fir.StoreOp(one, out))
        eb = Builder.at_end(if_op.else_block)
        minus = eb.insert(arith.Constant.int(-1, 32)).results[0]
        eb.insert(fir.StoreOp(minus, out))
        result = b.insert(fir.LoadOp(out)).results[0]
        b.insert(func.ReturnOp([result]))
        verify(module)
        interp = Interpreter(module)
        assert interp.call("f", np.array(5, np.int32)) == (1,)
        assert interp.call("f", np.array(-5, np.int32)) == (-1,)

    @pytest.mark.parametrize(
        "src_value,target,expected",
        [
            (3, f32, 3.0),
            (3.7, i32, 3),
            (2.5, index, 2),
        ],
    )
    def test_convert(self, src_value, target, expected):
        module, fn, b = _fn(result_types=[target])
        if isinstance(src_value, int):
            v = b.insert(arith.Constant.int(src_value, 32)).results[0]
        else:
            v = b.insert(arith.Constant.float(src_value, 64)).results[0]
        converted = b.insert(fir.ConvertOp(v, target)).results[0]
        b.insert(func.ReturnOp([converted]))
        assert Interpreter(module).call("f") == (expected,)

    def test_print(self, capsys):
        module, fn, b = _fn()
        v = b.insert(arith.Constant.int(7, 32)).results[0]
        b.insert(fir.PrintOp([v], label="value ="))
        b.insert(func.ReturnOp())
        Interpreter(module).call("f")
        assert "value = 7" in capsys.readouterr().out

"""OMP dialect: op structure + sequential interpreter semantics."""

import numpy as np
import pytest

from repro.dialects import arith, builtin, func, memref, omp
from repro.ir import Builder, Interpreter, IRError, verify
from repro.ir.types import FunctionType, MemRefType, f32


class TestMapInfo:
    def _var(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [8])], []))
        module.body.add_op(fn)
        return module, fn, Builder.at_end(fn.body)

    def test_map_types(self):
        _, fn, b = self._var()
        info = b.insert(omp.MapInfoOp(fn.body.args[0], "a", "tofrom,implicit"))
        assert info.is_implicit
        assert info.base_map_type == "tofrom"
        assert info.copies_to_device and info.copies_from_device

    def test_to_only(self):
        _, fn, b = self._var()
        info = b.insert(omp.MapInfoOp(fn.body.args[0], "a", "to"))
        assert info.copies_to_device and not info.copies_from_device
        assert not info.is_implicit

    def test_from_only(self):
        _, fn, b = self._var()
        info = b.insert(omp.MapInfoOp(fn.body.args[0], "a", "from"))
        assert not info.copies_to_device and info.copies_from_device

    def test_invalid_map_type(self):
        _, fn, b = self._var()
        with pytest.raises(IRError, match="invalid map type"):
            omp.MapInfoOp(fn.body.args[0], "a", "sideways")

    def test_result_passthrough_type(self):
        _, fn, b = self._var()
        info = b.insert(omp.MapInfoOp(fn.body.args[0], "a", "to"))
        assert info.results[0].type == fn.body.args[0].type


class TestTargetStructure:
    def test_region_args_match_maps(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [8])], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        info = b.insert(omp.MapInfoOp(fn.body.args[0], "a", "tofrom"))
        target = b.insert(omp.TargetOp([info.results[0]]))
        assert len(target.body.args) == 1
        Builder.at_end(target.body).insert(omp.TerminatorOp())
        b.insert(func.ReturnOp())
        verify(module)
        assert target.map_info_ops() == [info]

    def test_wsloop_reduction_validation(self):
        with pytest.raises(IRError, match="length mismatch"):
            omp.WsLoopOp(reduction_vars=[], reduction_kinds=["add"])

    def test_wsloop_bad_kind(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [])], []))
        module.body.add_op(fn)
        with pytest.raises(IRError, match="invalid reduction kind"):
            omp.WsLoopOp(
                reduction_vars=[fn.body.args[0]], reduction_kinds=["xor"]
            )

    def test_loop_nest_finder(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        lb = b.insert(arith.Constant.index(1)).results[0]
        ub = b.insert(arith.Constant.index(4)).results[0]
        st = b.insert(arith.Constant.index(1)).results[0]
        ws = b.insert(omp.WsLoopOp())
        wb = Builder.at_end(ws.body)
        simd = wb.insert(omp.SimdOp(4))
        wb.insert(omp.TerminatorOp())
        sb = Builder.at_end(simd.body)
        nest = sb.insert(omp.LoopNestOp(lb, ub, st))
        sb.insert(omp.TerminatorOp())
        Builder.at_end(nest.body).insert(omp.YieldOp())
        b.insert(func.ReturnOp())
        assert ws.loop_nest() is nest
        assert simd.loop_nest() is nest
        assert simd.simdlen == 4


class TestSequentialSemantics:
    def _offload_module(self, inclusive=True):
        """omp.target wrapping y[i] = 2*x[i] over i = 1..4 (inclusive)."""
        module = builtin.ModuleOp()
        vec = MemRefType(f32, [4])
        fn = func.FuncOp("f", FunctionType([vec, vec], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        infos = [
            b.insert(omp.MapInfoOp(arg, name, "tofrom")).results[0]
            for arg, name in zip(fn.body.args, ("x", "y"))
        ]
        target = b.insert(omp.TargetOp(infos))
        tb = Builder.at_end(target.body)
        lb = tb.insert(arith.Constant.index(1)).results[0]
        ub = tb.insert(arith.Constant.index(4)).results[0]
        st = tb.insert(arith.Constant.index(1)).results[0]
        par = tb.insert(omp.ParallelOp())
        pb = Builder.at_end(par.body)
        ws = pb.insert(omp.WsLoopOp())
        pb.insert(omp.TerminatorOp())
        wb = Builder.at_end(ws.body)
        nest = wb.insert(omp.LoopNestOp(lb, ub, st, inclusive=inclusive))
        wb.insert(omp.TerminatorOp())
        nb = Builder.at_end(nest.body)
        one = nb.insert(arith.Constant.index(1)).results[0]
        zero_based = nb.insert(arith.SubI(nest.induction_var, one)).results[0]
        x, y = target.body.args
        xv = nb.insert(memref.Load(x, [zero_based])).results[0]
        two = nb.insert(arith.Constant.float(2.0, 32)).results[0]
        doubled = nb.insert(arith.MulF(two, xv)).results[0]
        nb.insert(memref.Store(doubled, y, [zero_based]))
        nb.insert(omp.YieldOp())
        tb.insert(omp.TerminatorOp())
        b.insert(func.ReturnOp())
        verify(module)
        return module

    def test_target_executes_region(self):
        module = self._offload_module()
        x = np.arange(1, 5, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        Interpreter(module).call("f", x, y)
        assert np.allclose(y, 2 * x)

    def test_inclusive_bound(self):
        module = self._offload_module(inclusive=True)
        x = np.ones(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        Interpreter(module).call("f", x, y)
        assert np.count_nonzero(y) == 4  # all four iterations ran

    def test_exclusive_bound(self):
        module = self._offload_module(inclusive=False)
        x = np.ones(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        Interpreter(module).call("f", x, y)
        assert np.count_nonzero(y) == 3  # i = 1..3 only

    def test_data_edges_are_noops(self):
        module = builtin.ModuleOp()
        fn = func.FuncOp("f", FunctionType([MemRefType(f32, [4])], []))
        module.body.add_op(fn)
        b = Builder.at_end(fn.body)
        info = b.insert(omp.MapInfoOp(fn.body.args[0], "x", "to")).results[0]
        b.insert(omp.TargetEnterDataOp([info]))
        info2 = b.insert(omp.MapInfoOp(fn.body.args[0], "x", "from")).results[0]
        b.insert(omp.TargetExitDataOp([info2]))
        b.insert(func.ReturnOp())
        verify(module)
        Interpreter(module).call("f", np.zeros(4, np.float32))

"""Device dialect structure tests (the paper's contribution)."""

import pytest

from repro.dialects import builtin, device, func
from repro.ir import Builder, IRError, print_op, verify
from repro.ir.types import FunctionType, MemRefType, f32, i1


def _ctx():
    module = builtin.ModuleOp()
    fn = func.FuncOp("main", FunctionType([], []))
    module.body.add_op(fn)
    return module, fn, Builder.at_end(fn.body)


class TestDataOps:
    def test_alloc_type_space_consistency(self):
        _, _, b = _ctx()
        alloc = b.insert(
            device.AllocOp(
                MemRefType(f32, [100], 1), identifier="a", memory_space=1
            )
        )
        assert alloc.identifier == "a"
        assert alloc.memory_space == 1
        assert alloc.results[0].type.memory_space == 1

    def test_alloc_space_mismatch_raises(self):
        with pytest.raises(IRError, match="memory space"):
            device.AllocOp(
                MemRefType(f32, [100], 2), identifier="a", memory_space=1
            )

    def test_check_exists_returns_i1(self):
        _, _, b = _ctx()
        check = b.insert(device.DataCheckExistsOp(identifier="a"))
        assert check.results[0].type == i1
        assert check.identifier == "a"

    def test_acquire_release_attrs(self):
        _, _, b = _ctx()
        acq = b.insert(device.DataAcquireOp(identifier="a", memory_space=3))
        rel = b.insert(device.DataReleaseOp(identifier="a", memory_space=3))
        assert acq.identifier == rel.identifier == "a"
        assert acq.memory_space == rel.memory_space == 3

    def test_printing_matches_listing2_shape(self):
        """The printed form carries name + memory_space like the paper."""
        module, _, b = _ctx()
        b.insert(
            device.AllocOp(
                MemRefType(f32, [100], 1), identifier="a", memory_space=1
            )
        )
        b.insert(func.ReturnOp())
        text = print_op(module)
        assert '"device.alloc"()' in text
        assert 'name = "a"' in text
        assert "memory_space = 1 : i32" in text
        assert "memref<100xf32, 1 : i32>" in text


class TestKernelOps:
    def test_kernel_lifecycle(self):
        module, fn, b = _ctx()
        buf = b.insert(
            device.AllocOp(
                MemRefType(f32, [8], 1), identifier="a", memory_space=1
            )
        ).results[0]
        create = b.insert(device.KernelCreateOp([buf]))
        assert create.results[0].type == device.kernel_handle
        assert not create.is_extracted
        launch = b.insert(device.KernelLaunchOp(create.results[0]))
        wait = b.insert(device.KernelWaitOp(create.results[0]))
        assert launch.handle is create.results[0]
        assert wait.handle is create.results[0]
        Builder.at_end(create.body).detach_flag = None  # region exists
        # region terminated implicitly (kernel body has no terminator op)
        b.insert(func.ReturnOp())
        verify(module)

    def test_extracted_state(self):
        _, _, b = _ctx()
        buf = b.insert(
            device.AllocOp(
                MemRefType(f32, [8], 1), identifier="a", memory_space=1
            )
        ).results[0]
        create = b.insert(
            device.KernelCreateOp([buf], device_function="my_kernel")
        )
        # simulate extraction: empty the region body
        create.regions[0].block.ops.clear()
        create.regions[0].block.args.clear()
        assert create.device_function == "my_kernel"
        assert create.is_extracted

    def test_kernel_create_region_args_checked(self):
        module, fn, b = _ctx()
        buf = b.insert(
            device.AllocOp(
                MemRefType(f32, [8], 1), identifier="a", memory_space=1
            )
        ).results[0]
        create = b.insert(device.KernelCreateOp([buf]))
        # sabotage: body with ops but wrong arg count
        create.body.args.clear()
        inner = Builder.at_end(create.body)
        inner.insert(
            device.DataCheckExistsOp(identifier="x")
        )
        b.insert(func.ReturnOp())
        with pytest.raises(IRError, match="block arg"):
            verify(module)

"""Parallel + resumable DSE: deterministic ordering, restart safety."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.dse import DseResultStore, explore_workload
from repro.reliability import DataIntegrityError

FACTORS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def serial_result():
    return explore_workload("saxpy", simdlen_factors=FACTORS)


def test_parallel_sweep_table_identical_to_serial(serial_result):
    """The ordering bugfix pin: worker completion order must never
    reorder rows or change any value."""
    parallel = explore_workload(
        "saxpy", simdlen_factors=FACTORS, workers=2
    )
    assert parallel.table() == serial_result.table()
    assert parallel.best.simdlen == serial_result.best.simdlen
    assert [
        (p.simdlen, p.reduction_copies) for p in parallel.points
    ] == [(f, 8) for f in FACTORS]


def test_parallel_keep_programs_returns_runnable_programs():
    result = explore_workload(
        "saxpy", simdlen_factors=(1, 4), workers=2, keep_programs=True
    )
    for point in result.points:
        assert point.program is not None
        assert point.program.bitstream is not None


def test_session_with_workers_is_rejected():
    from repro.session import Session
    from repro.workloads import get_workload

    workload = get_workload("saxpy")
    with pytest.raises(ValueError, match="cannot be combined"):
        explore_workload(
            workload,
            simdlen_factors=(1,),
            workers=2,
            session=Session(workload.source),
        )


# -- resumable result store --------------------------------------------------


def test_resumed_sweep_skips_completed_points(tmp_path, serial_result):
    store = DseResultStore(tmp_path)
    explore_workload(
        "saxpy", simdlen_factors=FACTORS[:2], result_store=store
    )
    assert store.saves == 2
    resumed_store = DseResultStore(tmp_path)
    full = explore_workload(
        "saxpy", simdlen_factors=FACTORS, result_store=resumed_store
    )
    assert resumed_store.loads == 2
    assert resumed_store.saves == 2
    assert full.table() == serial_result.table()


def test_completed_sweep_is_served_entirely_from_store(
    tmp_path, serial_result
):
    store = DseResultStore(tmp_path)
    explore_workload("saxpy", simdlen_factors=FACTORS, result_store=store)
    replay_store = DseResultStore(tmp_path)
    replay = explore_workload(
        "saxpy", simdlen_factors=FACTORS, result_store=replay_store
    )
    assert replay_store.loads == len(FACTORS)
    assert replay_store.saves == 0
    assert replay.table() == serial_result.table()
    # nothing was compiled: no session was ever created
    assert replay.session is None


def test_corrupt_record_raises_data_integrity_error(tmp_path):
    store = DseResultStore(tmp_path)
    explore_workload("saxpy", simdlen_factors=(1,), result_store=store)
    record = next(tmp_path.glob("*.json"))
    record.write_text("{truncated")
    with pytest.raises(DataIntegrityError, match="unreadable record"):
        explore_workload(
            "saxpy", simdlen_factors=(1,), result_store=DseResultStore(
                tmp_path
            )
        )


_KILLED_SWEEP = """
import os, sys
from repro.dse import DseResultStore, explore_workload
from repro.workloads import get_workload

store = DseResultStore(sys.argv[1])
workload = get_workload("saxpy")
inner = workload.evaluator()
budget = int(sys.argv[2])
evaluated = 0

def evaluate(program):
    global evaluated
    if evaluated >= budget:
        os._exit(42)  # simulate a kill mid-sweep, no cleanup
    evaluated += 1
    return inner(program)

from repro.dse import explore
explore(
    workload.source, evaluate,
    simdlen_factors=(1, 2, 4, 8), result_store=store,
)
"""


@pytest.mark.slow
def test_killed_and_restarted_sweep_is_bit_identical(
    tmp_path, serial_result
):
    """The acceptance bar: kill a sweep after two points, restart with
    the same store — it completes without re-evaluating finished points
    and produces a table bit-identical to an uninterrupted run."""
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_SWEEP, str(tmp_path), "2"],
        cwd=Path(__file__).resolve().parents[2],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 42, proc.stderr
    assert len(DseResultStore(tmp_path)) == 2
    store = DseResultStore(tmp_path)
    resumed = explore_workload(
        "saxpy", simdlen_factors=FACTORS, result_store=store
    )
    assert store.loads == 2, "finished points were re-evaluated"
    assert store.saves == 2
    assert resumed.table() == serial_result.table()

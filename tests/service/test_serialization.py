"""Pickle round-trips: stage artifacts rerun bit-identically, wrapped
errors survive the process-pool boundary."""

from __future__ import annotations

import pickle
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.reliability import FrontendError, ReproError, wrap_error
from repro.session import KernelOverrides, Session
from tests.conftest import SAXPY_MINI, run_offload_saxpy


# -- stage artifact round-trips ----------------------------------------------


@pytest.fixture(scope="module")
def session():
    return Session(SAXPY_MINI)


def _round_trip(obj):
    return pickle.loads(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    )


def test_frontend_artifact_round_trip(session):
    artifact = _round_trip(session.frontend())
    assert sorted(artifact.program_info.units) == sorted(
        session.frontend().program_info.units
    )
    assert str(artifact.module) == str(session.frontend().module)


def test_host_device_artifact_round_trip(session):
    artifact = _round_trip(session.host_device())
    original = session.host_device()
    assert artifact.host_cpp == original.host_cpp
    assert str(artifact.device_module) == str(original.device_module)


def test_device_build_round_trip_preserves_schedules(session):
    overrides = KernelOverrides(simdlen=4)
    build = session.device_build(overrides)
    copy = _round_trip(build)
    ours = build.bitstream.utilization()
    theirs = copy.bitstream.utilization()
    assert (ours.lut, ours.dsp) == (theirs.lut, theirs.dsp)
    # the id()-keyed loop schedules were re-keyed onto the unpickled
    # module's ops: every schedule still addresses a live op
    for name, kernel in copy.bitstream.kernels.items():
        module_ids = {id(op) for op in copy.device_module.walk()}
        assert set(kernel.loops) <= module_ids, name


def test_program_round_trip_reruns_bit_identically(session):
    program = session.program()
    copy = _round_trip(program)
    y1, expected, r1 = run_offload_saxpy(program)
    y2, _, r2 = run_offload_saxpy(copy)
    np.testing.assert_array_equal(y1, expected)
    assert y1.tobytes() == y2.tobytes()
    assert r1.interpreter_steps == r2.interpreter_steps
    assert r1.device_time_ms == r2.device_time_ms
    assert r1.kernel_cycles == r2.kernel_cycles


def test_program_reruns_bit_identically_in_fresh_process(tmp_path):
    """The acceptance bar: an artifact pickled here and rerun in a brand
    new interpreter produces the same outputs AND modelled metrics."""
    program = Session(SAXPY_MINI).program()
    y, expected, result = run_offload_saxpy(program)
    blob = tmp_path / "program.pkl"
    blob.write_bytes(
        pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    )
    script = (
        "import pickle, sys, json\n"
        "import numpy as np\n"
        "from tests.conftest import run_offload_saxpy\n"
        f"program = pickle.loads(open({str(blob)!r}, 'rb').read())\n"
        "y, expected, result = run_offload_saxpy(program)\n"
        "print(json.dumps({\n"
        "    'y': y.tobytes().hex(),\n"
        "    'steps': result.interpreter_steps,\n"
        "    'device_time_ms': result.device_time_ms,\n"
        "    'kernel_cycles': result.kernel_cycles,\n"
        "}))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=Path(__file__).resolve().parents[2],
        check=True,
    )
    import json

    remote = json.loads(proc.stdout.strip().splitlines()[-1])
    assert bytes.fromhex(remote["y"]) == y.tobytes()
    assert remote["steps"] == result.interpreter_steps
    assert remote["device_time_ms"] == result.device_time_ms
    assert remote["kernel_cycles"] == result.kernel_cycles


# -- wrapped errors across process boundaries --------------------------------


class ForeignParserError(Exception):
    """Stand-in for a third-party exception adopted into the taxonomy."""


def test_wrapped_error_pickle_round_trip():
    original = ForeignParserError("unexpected token")
    wrapped = wrap_error(
        original, FrontendError, kernel="saxpy", context="line 3"
    )
    copy = _round_trip(wrapped)
    assert type(copy) is type(wrapped)
    assert isinstance(copy, FrontendError)
    assert isinstance(copy, ForeignParserError)
    assert isinstance(copy, ReproError)
    assert copy.kernel == "saxpy"
    assert copy.context == "line 3"
    assert copy.stage == "frontend"
    assert str(copy) == str(wrapped)


def _raise_wrapped(_index):
    raise wrap_error(
        ForeignParserError("worker-side failure"),
        FrontendError,
        context="pool",
    )


@pytest.mark.slow
def test_wrapped_error_survives_process_pool_boundary():
    """Regression: a worker raising a dynamically created wrapped class
    must reconstruct in the parent (the default pickle path cannot find
    the class by qualname)."""
    with ProcessPoolExecutor(max_workers=1) as pool:
        with pytest.raises(FrontendError) as info:
            pool.submit(_raise_wrapped, 0).result()
    assert isinstance(info.value, ForeignParserError)
    assert info.value.context == "pool"

"""Artifact store: addressing, tiers, eviction, integrity checking."""

from __future__ import annotations

import pytest

from repro.reliability import DataIntegrityError
from repro.service import (
    ArtifactKey,
    ArtifactStore,
    canonical_source,
)
from repro.session import KernelOverrides, TargetConfig
from tests.conftest import SAXPY_MINI


# -- canonical source / keys -------------------------------------------------


def test_canonical_source_ignores_incidental_whitespace():
    a = canonical_source("subroutine s\nend subroutine s\n")
    b = canonical_source("\r\nsubroutine s   \r\nend subroutine s\n\n\n")
    assert a == b


def test_key_digest_stable_across_equal_instances():
    k1 = ArtifactKey(source=SAXPY_MINI)
    k2 = ArtifactKey(
        source=SAXPY_MINI,
        target=TargetConfig(),
        stage="program",
        overrides=KernelOverrides(),
    )
    assert k1.digest == k2.digest


def test_key_digest_distinguishes_stage_and_overrides():
    base = ArtifactKey(source=SAXPY_MINI)
    digests = {
        base.digest,
        ArtifactKey(source=SAXPY_MINI, stage="frontend").digest,
        ArtifactKey(
            source=SAXPY_MINI, overrides=KernelOverrides(simdlen=8)
        ).digest,
    }
    assert len(digests) == 3


def test_key_overrides_do_not_affect_host_stages():
    """The frontend/host split does not depend on overrides, so a DSE
    sweep's points share one frontend address."""
    a = ArtifactKey(source=SAXPY_MINI, stage="frontend")
    b = ArtifactKey(
        source=SAXPY_MINI,
        stage="frontend",
        overrides=KernelOverrides(simdlen=8),
    )
    assert a.digest == b.digest


def test_key_rejects_unknown_stage():
    with pytest.raises(ValueError, match="unknown stage"):
        ArtifactKey(source=SAXPY_MINI, stage="bitstream")


# -- tiers -------------------------------------------------------------------


def test_memory_tier_round_trip():
    store = ArtifactStore()
    key = ArtifactKey(source=SAXPY_MINI)
    assert store.get(key) is None
    store.put(key, {"payload": 1}, {"build_s": 0.1})
    hit = store.get(key)
    assert hit is not None and hit.tier == "memory"
    assert hit.load() == {"payload": 1}
    assert hit.metadata["metrics"] == {"build_s": 0.1}
    assert store.stats.memory_hits == 1 and store.stats.misses == 1


def test_load_returns_fresh_object_per_caller():
    store = ArtifactStore()
    key = ArtifactKey(source=SAXPY_MINI)
    store.put(key, {"mutable": []})
    first = store.get(key).load()
    first["mutable"].append("dirty")
    assert store.get(key).load() == {"mutable": []}


def test_disk_tier_survives_memory_clear(tmp_path):
    store = ArtifactStore(tmp_path)
    key = ArtifactKey(source=SAXPY_MINI)
    store.put(key, {"payload": 2})
    store.clear_memory()
    hit = store.get(key)
    assert hit is not None and hit.tier == "disk"
    assert hit.load() == {"payload": 2}
    # the disk hit was promoted back into the memory tier
    assert store.get(key).tier == "memory"


def test_disk_tier_shared_between_store_instances(tmp_path):
    key = ArtifactKey(source=SAXPY_MINI)
    ArtifactStore(tmp_path).put(key, {"payload": 3})
    other = ArtifactStore(tmp_path)
    hit = other.get(key)
    assert hit is not None and hit.load() == {"payload": 3}


def test_memory_lru_evicts_oldest(tmp_path):
    store = ArtifactStore(tmp_path, memory_entries=2)
    keys = [
        ArtifactKey(source=SAXPY_MINI, overrides=KernelOverrides(simdlen=s))
        for s in (1, 2, 4)
    ]
    for i, key in enumerate(keys):
        store.put(key, {"i": i})
    assert len(store) == 2
    assert store.stats.evictions == 1
    # the evicted entry still resolves from disk
    assert store.get(keys[0]).tier == "disk"


def test_delete_clears_both_tiers(tmp_path):
    store = ArtifactStore(tmp_path)
    key = ArtifactKey(source=SAXPY_MINI)
    store.put(key, {"payload": 4})
    assert key in store
    assert store.delete(key)
    assert key not in store
    assert store.get(key) is None


# -- integrity ---------------------------------------------------------------


def _corrupt_payload(store, key):
    payload_path, _ = store._paths(key.digest)
    data = bytearray(payload_path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    payload_path.write_bytes(bytes(data))


def test_corrupted_payload_raises_data_integrity_error(tmp_path):
    store = ArtifactStore(tmp_path)
    key = ArtifactKey(source=SAXPY_MINI)
    store.put(key, {"payload": 5})
    _corrupt_payload(store, key)
    store.clear_memory()
    with pytest.raises(DataIntegrityError, match="checksum mismatch"):
        store.get(key)
    assert store.stats.integrity_failures == 1


def test_corrupted_metadata_raises_data_integrity_error(tmp_path):
    store = ArtifactStore(tmp_path)
    key = ArtifactKey(source=SAXPY_MINI)
    store.put(key, {"payload": 6})
    _, meta_path = store._paths(key.digest)
    meta_path.write_text("{not json")
    store.clear_memory()
    with pytest.raises(DataIntegrityError, match="unreadable metadata"):
        store.get(key)


def test_metadata_for_wrong_key_is_rejected(tmp_path):
    """A metadata record addressing a different digest (e.g. a renamed
    file) must not be served."""
    store = ArtifactStore(tmp_path)
    key_a = ArtifactKey(source=SAXPY_MINI)
    key_b = ArtifactKey(source=SAXPY_MINI, stage="frontend")
    store.put(key_a, {"payload": 7})
    a_payload, a_meta = store._paths(key_a.digest)
    b_payload, b_meta = store._paths(key_b.digest)
    b_payload.parent.mkdir(parents=True, exist_ok=True)
    b_payload.write_bytes(a_payload.read_bytes())
    b_meta.write_bytes(a_meta.read_bytes())
    store.clear_memory()
    with pytest.raises(DataIntegrityError):
        store.get(key_b)


def test_missing_partner_file_reads_as_miss(tmp_path):
    """A crash between payload and metadata writes leaves a half entry:
    that is a miss (rebuild), never corruption."""
    store = ArtifactStore(tmp_path)
    key = ArtifactKey(source=SAXPY_MINI)
    store.put(key, {"payload": 8})
    _, meta_path = store._paths(key.digest)
    meta_path.unlink()
    store.clear_memory()
    assert store.get(key) is None

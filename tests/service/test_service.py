"""Compile service: hits, misses, coalescing, admission, rebuild."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    AdmissionRejected,
    DataIntegrityError,
    FrontendError,
    ServiceError,
)
from repro.service import (
    ArtifactStore,
    CompileRequest,
    CompileService,
)
from repro.reporting import service_request_table, service_stats_table
from tests.conftest import SAXPY_MINI, run_offload_saxpy


@pytest.fixture
def inline_service(tmp_path):
    """A fork-free service (builds run in the submitting thread)."""
    with CompileService(
        store=ArtifactStore(tmp_path), max_workers=0
    ) as service:
        yield service


# -- cache outcomes ----------------------------------------------------------


def test_miss_then_memory_hit(inline_service):
    request = CompileRequest(SAXPY_MINI)
    first = inline_service.compile(request)
    assert first.metrics.outcome == "built"
    assert first.metrics.build_s > 0.0
    second = inline_service.compile(request)
    assert second.metrics.outcome == "memory_hit"
    assert second.metrics.build_s == 0.0
    stats = inline_service.stats
    assert stats.requests == 2
    assert stats.builds == 1
    assert stats.memory_hits == 1
    assert stats.misses == 1


def test_disk_hit_after_memory_clear(inline_service):
    request = CompileRequest(SAXPY_MINI)
    inline_service.compile(request)
    inline_service.store.clear_memory()
    response = inline_service.compile(request)
    assert response.metrics.outcome == "disk_hit"
    assert inline_service.stats.disk_hits == 1


def test_cached_artifact_runs_bit_identically(inline_service):
    request = CompileRequest(SAXPY_MINI)
    built = inline_service.compile(request)
    cached = inline_service.compile(request)
    assert cached.artifact is not built.artifact
    y1, expected, r1 = run_offload_saxpy(built.artifact)
    y2, _, r2 = run_offload_saxpy(cached.artifact)
    np.testing.assert_array_equal(y1, expected)
    assert y1.tobytes() == y2.tobytes()
    assert r1.interpreter_steps == r2.interpreter_steps
    assert r1.device_time_ms == r2.device_time_ms
    assert r1.kernel_cycles == r2.kernel_cycles


def test_stage_requests_are_cached_separately(inline_service):
    for stage in ("frontend", "host_device", "device_build", "program"):
        response = inline_service.compile(
            CompileRequest(SAXPY_MINI, stage=stage)
        )
        assert response.metrics.outcome == "built"
        assert response.metadata["stage"] == stage
    assert inline_service.stats.builds == 4


def test_build_failure_propagates_wrapped_error(inline_service):
    with pytest.raises(FrontendError):
        inline_service.compile(CompileRequest("this is not fortran ("))
    assert inline_service.stats.build_failures == 1
    # the failure is not cached: the store holds nothing for the key
    assert CompileRequest("this is not fortran (").key() not in (
        inline_service.store
    )


def test_unknown_stage_is_rejected_typed(inline_service):
    with pytest.raises(ValueError, match="unknown stage"):
        inline_service.compile(CompileRequest(SAXPY_MINI, stage="link"))


def test_closed_service_rejects_submissions(tmp_path):
    service = CompileService(store=ArtifactStore(tmp_path), max_workers=0)
    service.close()
    with pytest.raises(ServiceError, match="closed"):
        service.submit(CompileRequest(SAXPY_MINI))


# -- integrity rebuild -------------------------------------------------------


def test_corrupt_disk_entry_is_rebuilt_not_served(inline_service):
    request = CompileRequest(SAXPY_MINI)
    inline_service.compile(request)
    digest = request.key().digest
    payload_path, _ = inline_service.store._paths(digest)
    data = bytearray(payload_path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    payload_path.write_bytes(bytes(data))
    inline_service.store.clear_memory()
    with pytest.raises(DataIntegrityError):
        inline_service.store.get(request.key())
    response = inline_service.compile(request)
    assert response.metrics.outcome == "built"
    assert inline_service.stats.integrity_rebuilds == 1
    y, expected, _ = run_offload_saxpy(response.artifact)
    np.testing.assert_array_equal(y, expected)


# -- coalescing / admission (real pool) --------------------------------------


@pytest.mark.slow
def test_concurrent_same_key_requests_coalesce_to_one_build(tmp_path):
    with CompileService(
        store=ArtifactStore(tmp_path), max_workers=1
    ) as service:
        service.warm_pool()
        futures = [
            service.submit(CompileRequest(SAXPY_MINI)) for _ in range(8)
        ]
        responses = [f.result() for f in futures]
    outcomes = sorted(r.metrics.outcome for r in responses)
    assert outcomes == ["built"] + ["coalesced"] * 7
    assert service.stats.builds == 1
    assert service.stats.coalesced == 7
    digests = {r.metrics.digest for r in responses}
    assert len(digests) == 1
    # every waiter got an independent artifact object
    assert len({id(r.artifact) for r in responses}) == 8


@pytest.mark.slow
def test_admission_queue_rejects_when_full(tmp_path):
    with CompileService(
        store=ArtifactStore(tmp_path), max_workers=1, queue_depth=1
    ) as service:
        service.warm_pool()
        first = service.submit(CompileRequest(SAXPY_MINI))
        other = SAXPY_MINI.replace("saxpy", "saxpy2")
        with pytest.raises(AdmissionRejected) as info:
            service.submit(CompileRequest(other))
        assert info.value.transient
        assert service.stats.rejected == 1
        # the first build is unaffected by the rejection
        assert first.result().metrics.outcome == "built"
        # once the queue drains, the same request is admitted
        retried = service.compile(CompileRequest(other))
        assert retried.metrics.outcome == "built"


# -- reporting ---------------------------------------------------------------


def test_service_tables_render(inline_service):
    responses = [
        inline_service.compile(CompileRequest(SAXPY_MINI))
        for _ in range(2)
    ]
    stats_table = service_stats_table(inline_service.stats)
    assert "memory_hits" in stats_table and "builds" in stats_table
    request_table = service_request_table(responses)
    assert "built" in request_table and "memory_hit" in request_table
